"""Dictionary-encoded columnar storage (with an out-of-core spill path).

The profiling substrate never needs the *values* of a column on its hot
path — it needs to know which rows share a value.  This module therefore
stores each column as

* a **dictionary**: the distinct values in first-seen order, and
* a dense **code array**: one ``int32`` per row, the row's value's index
  in the dictionary.

Codes are assigned in first-seen order, which makes them exactly the
dense value ids :func:`repro.pli.pli.value_vector` would produce — so an
encoded column *is* the probe vector of FD refinement checks, and its
single-column PLI falls out of one grouping pass over integer codes with
no per-value hashing or boxing at all
(:meth:`repro.pli.backend.PythonBackend.column_pli_from_codes` /
the NumPy backend's argsort grouping, which consumes the code buffer
zero-copy via ``np.frombuffer``).

Three **storage modes** exist, selected process-globally like the PLI
kernel backend (``--storage`` / ``$REPRO_STORAGE`` /
:func:`set_storage` / :func:`use_storage`):

* ``objects`` — the seed representation: columns are tuples of boxed
  Python values, the index re-groups them per column.  Kept as the
  differential baseline.
* ``encoded`` — the default: code arrays live in ``array('i')`` buffers
  (stdlib only, the zero-dependency promise).  This is the mode every
  pipeline runs on unless told otherwise.
* ``mmap`` — the out-of-core mode: code arrays are spilled to
  memory-mapped files under a spill directory
  (``$REPRO_SPILL_DIR`` or the system temp dir), so the resident cost of
  a relation is its dictionaries plus a bounded chunk buffer — relations
  far larger than RAM profile without thrashing.  Spill files are
  process-private temporaries: each is created with an unpredictable
  name, unlinked by a finalizer when its column is garbage collected,
  and never reused across runs.

Spill-file writes trip the :data:`~repro.faults.STORAGE_SPILL` fault
point and are retried under the harness retry policy (transient I/O is
absorbed exactly like cache/checkpoint writes).

Exactness: encoding is a bijective re-labelling per column, so PLIs,
value vectors, and distinct-value lists derived from codes are
bit-identical to the object path — the differential and metamorphic
suites parametrize over all three modes to pin this.
"""

from __future__ import annotations

import io
import mmap
import os
import tempfile
import weakref
from array import array
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

from .. import trace as _trace
from ..faults import FAULTS, STORAGE_SPILL

__all__ = [
    "ACTIVE",
    "ENV_VAR",
    "SPILL_DIR_ENV",
    "STORAGE_MODES",
    "CODE_BYTES",
    "SPILL_CHUNK_CODES",
    "ColumnEncoder",
    "EncodedColumn",
    "StorageUnavailable",
    "active_storage",
    "encode_column",
    "encode_relation",
    "estimated_bytes_per_clustered_row",
    "resolve_storage",
    "set_storage",
    "spill_directory",
    "use_storage",
]

#: Environment variable naming the default storage mode for the process.
ENV_VAR = "REPRO_STORAGE"
#: Environment variable overriding the spill directory for ``mmap`` mode.
SPILL_DIR_ENV = "REPRO_SPILL_DIR"

#: Valid storage modes, in "most boxed" to "least resident" order.
STORAGE_MODES = ("objects", "encoded", "mmap")

#: Bytes per code: ``array('i')`` / little-endian ``int32`` on every
#: platform this package targets (dictionary sizes are bounded by the
#: row count, which is far below 2^31).
CODE_BYTES = 4

#: Codes buffered in memory per column before an ``mmap``-mode spill
#: flush; bounds the resident build cost of one column to
#: ``SPILL_CHUNK_CODES * CODE_BYTES`` bytes regardless of row count.
SPILL_CHUNK_CODES = 65_536


class StorageUnavailable(RuntimeError):
    """An explicitly requested storage mode cannot be used."""


def resolve_storage(choice: str | None) -> str:
    """Validate a storage-mode name (``None`` means ``encoded``)."""
    name = (choice or "encoded").strip().lower()
    if name not in STORAGE_MODES:
        raise StorageUnavailable(
            f"unknown storage mode {choice!r}; available: {STORAGE_MODES}"
        )
    return name


def _from_environment() -> str:
    """Import-time default: ``$REPRO_STORAGE`` or ``encoded``.

    Like the kernel backend's environment path, an unusable value warns
    and degrades instead of poisoning every import of the package.
    """
    choice = os.environ.get(ENV_VAR)
    if not choice:
        return "encoded"
    try:
        return resolve_storage(choice)
    except StorageUnavailable as error:
        import warnings

        warnings.warn(
            f"{ENV_VAR}={choice!r} ignored ({error}); "
            "falling back to the encoded storage mode",
            RuntimeWarning,
            stacklevel=2,
        )
        return "encoded"


#: The process-wide active storage mode (read at ingest time by
#: ``read_csv``, ``encode_relation``, and ``RelationIndex``).
ACTIVE: str = _from_environment()


def active_storage() -> str:
    """The storage mode currently armed for the process."""
    return ACTIVE


def set_storage(choice: str | None) -> str:
    """Arm a storage mode process-wide and return its name.

    ``None`` re-resolves the environment default.  Raises
    :class:`StorageUnavailable` for an unknown explicit choice, leaving
    the previously armed mode in place.
    """
    global ACTIVE
    mode = _from_environment() if choice is None else resolve_storage(choice)
    ACTIVE = mode
    return mode


@contextmanager
def use_storage(choice: str | None) -> Iterator[str]:
    """Scoped storage-mode selection (tests, the ``profile()`` facade).
    ``None`` keeps the currently armed mode — a no-op context."""
    global ACTIVE
    if choice is None:
        yield ACTIVE
        return
    previous = ACTIVE
    ACTIVE = resolve_storage(choice)
    try:
        yield ACTIVE
    finally:
        ACTIVE = previous


def spill_directory(override: str | None = None) -> str:
    """Resolve the spill directory for ``mmap``-mode code files.

    Precedence: explicit ``override``, ``$REPRO_SPILL_DIR``, the system
    temp dir.  The directory is created if missing.
    """
    root = override or os.environ.get(SPILL_DIR_ENV) or tempfile.gettempdir()
    os.makedirs(root, exist_ok=True)
    return root


def estimated_bytes_per_clustered_row(storage: str | None = None) -> int:
    """Estimated memory cost of one clustered row id under ``storage``.

    The execution guard's cluster-memory budget multiplies clustered
    rows by this figure.  Object storage pays a boxed int plus its tuple
    slot (~32 B); encoded storage is accounted at the dense-code width
    the substrate actually feeds the kernel.
    """
    mode = resolve_storage(storage) if storage is not None else ACTIVE
    if mode == "objects":
        return 32
    return 8  # int64 row id in an encoded cluster / kernel array


class EncodedColumn:
    """One dictionary-encoded column: dense codes plus a dictionary.

    Behaves like the tuple of values it encodes — ``len``, indexing,
    slicing, iteration, equality, and hashing all see decoded values —
    so a :class:`~repro.relation.relation.Relation` can hold it in place
    of an object column.  The profiling substrate bypasses the decoded
    view entirely and reads :attr:`codes` / :attr:`dictionary` directly.

    ``codes`` is an ``array('i')`` (``encoded`` mode) or a ``memoryview``
    over a memory-mapped spill file (``mmap`` mode); both subscript to
    plain ints.  Do not mutate either attribute.
    """

    __slots__ = (
        "codes",
        "dictionary",
        "storage",
        "spill_path",
        "_mmap",
        "_hash",
        "_finalizer",
        "_positions",
        "__weakref__",
    )

    def __init__(
        self,
        codes: "array | memoryview",
        dictionary: list[Any],
        storage: str = "encoded",
        spill_path: str | None = None,
        mapped: "mmap.mmap | None" = None,
    ):
        self.codes = codes
        self.dictionary = dictionary
        self.storage = storage
        self.spill_path = spill_path
        self._mmap = mapped
        self._hash: int | None = None
        self._positions: dict[Any, int] | None = None
        # Spill-file lifecycle: the file exists exactly as long as some
        # column reads it; collection closes the map and unlinks.
        if spill_path is not None:
            self._finalizer = weakref.finalize(
                self, _release_spill, mapped, spill_path
            )
        else:
            self._finalizer = None

    # -- substrate views ---------------------------------------------------

    @property
    def n_codes(self) -> int:
        """Distinct values (the dictionary size)."""
        return len(self.dictionary)

    @property
    def encoded_bytes(self) -> int:
        """Estimated resident bytes of this column's encoded form."""
        return len(self.codes) * CODE_BYTES + 64 * len(self.dictionary)

    def code_buffer(self) -> "array | memoryview":
        """The raw int32 code buffer (zero-copy input for
        ``np.frombuffer``)."""
        return self.codes

    def python_vector(self) -> Sequence[int]:
        """Dense value vector in the pure-python kernel's preferred form.

        In-memory codes convert to a flat list once (list subscripts do
        not box, the hot-loop property the kernel relies on); mmap-backed
        codes stay a memoryview so the resident footprint keeps its
        bound — the slower subscript is the price of out-of-core mode.
        """
        if self.storage == "mmap":
            return self.codes
        return self.codes.tolist()

    # -- appends -----------------------------------------------------------

    def append_values(self, values: Sequence[Any]) -> list[int]:
        """Append a batch of values in place; returns their codes.

        The dictionary grows with first-seen new values (so codes stay
        the dense first-seen ids the kernel relies on) and the code array
        is extended in place.  ``mmap`` columns append to their spill
        file and re-map it.  Previously exported buffer views keep seeing
        the pre-append codes; callers holding derived vectors refresh
        them through the PLI layer's append path.
        """
        positions = self._positions
        if positions is None:
            positions = {
                value: code for code, value in enumerate(self.dictionary)
            }
            self._positions = positions
        dictionary = self.dictionary
        codes: list[int] = []
        for value in values:
            code = positions.get(value)
            if code is None:
                code = len(positions)
                positions[value] = code
                dictionary.append(value)
            codes.append(code)
        if not codes:
            return codes
        batch = array("i", codes)
        if self.storage == "mmap":
            self._append_spill(batch)
        else:
            try:
                self.codes.extend(batch)
            except BufferError:
                # A numpy view (np.frombuffer) pins the old buffer; swap
                # in a fresh extended array — the old one stays alive for
                # exactly as long as those views do.
                fresh = array("i", self.codes)
                fresh.extend(batch)
                self.codes = fresh
        self._hash = None
        return codes

    def _append_spill(self, batch: "array") -> None:
        """Append a code batch to the spill file and re-map it."""
        payload = batch.tobytes()

        def write() -> None:
            if FAULTS.armed:
                FAULTS.trip(STORAGE_SPILL)
            with open(self.spill_path, "ab") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())

        from ..harness.retry import RetryPolicy

        RetryPolicy().call(write, key=f"storage.spill:{self.spill_path}")
        _trace.count("storage.spilled_bytes", len(payload))
        # Re-map the grown file under the same path.  The old finalizer is
        # detached first so it cannot unlink the file we keep using; the
        # new one owns the (map, path) pair from here on.  Closing the old
        # map fails with BufferError while old memoryviews are alive — it
        # is then closed by its own deallocation once they go away.
        if self._finalizer is not None:
            self._finalizer.detach()
        old_map = self._mmap
        with open(self.spill_path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        self.codes = memoryview(mapped).cast("i")
        self._mmap = mapped
        self._finalizer = weakref.finalize(
            self, _release_spill, mapped, self.spill_path
        )
        if old_map is not None:
            try:
                old_map.close()
            except (BufferError, ValueError):
                pass

    # -- decoded tuple-like face -------------------------------------------

    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, key: int | slice) -> Any:
        if isinstance(key, slice):
            dictionary = self.dictionary
            return tuple(dictionary[code] for code in self.codes[key])
        return self.dictionary[self.codes[key]]

    def __iter__(self) -> Iterator[Any]:
        dictionary = self.dictionary
        for code in self.codes:
            yield dictionary[code]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EncodedColumn):
            if self.dictionary == other.dictionary:
                return _codes_equal(self.codes, other.codes)
            other = tuple(other)
        if isinstance(other, (tuple, list)):
            if len(other) != len(self.codes):
                return False
            return all(mine == theirs for mine, theirs in zip(self, other))
        return NotImplemented

    def __hash__(self) -> int:
        # Must match the decoded tuple's hash so an encoded relation and
        # its object twin stay interchangeable as dict/set keys.
        if self._hash is None:
            self._hash = hash(tuple(self))
        return self._hash

    def __repr__(self) -> str:
        return (
            f"EncodedColumn({len(self.codes)} rows, "
            f"{len(self.dictionary)} distinct, storage={self.storage!r})"
        )

    # -- process boundary --------------------------------------------------

    def __reduce__(self):
        # mmap views cannot travel; rebuild as an in-memory encoded
        # column on the far side (same codes, same dictionary).
        return (
            _rebuild_encoded_column,
            (array("i", self.codes), self.dictionary),
        )


def _rebuild_encoded_column(codes: "array", dictionary: list[Any]) -> EncodedColumn:
    return EncodedColumn(codes, dictionary, storage="encoded")


def _codes_equal(left, right) -> bool:
    if len(left) != len(right):
        return False
    return bytes(left) == bytes(right)


def _release_spill(mapped: "mmap.mmap | None", path: str) -> None:
    """Finalizer: close the map and delete the spill file (best effort)."""
    try:
        if mapped is not None:
            mapped.close()
    except (BufferError, ValueError, OSError):  # pragma: no cover - teardown
        pass
    try:
        os.unlink(path)
    except OSError:  # pragma: no cover - already gone / dir vanished
        pass


class ColumnEncoder:
    """Streaming builder of one :class:`EncodedColumn`.

    Values arrive one at a time (:meth:`add`), each is mapped to its
    dictionary code, and the code lands in a bounded chunk buffer.  In
    ``mmap`` mode a full buffer is spilled to the column's temp file (a
    retry-absorbed, fault-injectable write), so the resident build cost
    never scales with the row count.
    """

    __slots__ = (
        "storage",
        "_codes",
        "_chunk",
        "_dictionary",
        "_positions",
        "_spill_dir",
        "_path",
        "_handle",
        "_spilled",
    )

    def __init__(self, storage: str | None = None, spill_dir: str | None = None):
        self.storage = resolve_storage(storage) if storage is not None else ACTIVE
        if self.storage == "objects":
            raise StorageUnavailable(
                "objects storage has no encoder; build the relation directly"
            )
        self._dictionary: list[Any] = []
        self._positions: dict[Any, int] = {}
        self._spill_dir = spill_dir
        self._path: str | None = None
        self._handle: io.BufferedWriter | None = None
        self._spilled = 0
        if self.storage == "mmap":
            self._codes = None
            self._chunk = array("i")
        else:
            self._codes = array("i")
            self._chunk = None

    def add(self, value: Any) -> int:
        """Encode one value; returns its dictionary code."""
        positions = self._positions
        code = positions.get(value)
        if code is None:
            code = len(positions)
            positions[value] = code
            self._dictionary.append(value)
        if self._chunk is not None:
            self._chunk.append(code)
            if len(self._chunk) >= SPILL_CHUNK_CODES:
                self._flush()
        else:
            self._codes.append(code)
        return code

    def extend(self, values: Iterator[Any]) -> None:
        """Encode a whole iterable of values."""
        for value in values:
            self.add(value)

    # -- spill path --------------------------------------------------------

    def _open_spill(self) -> None:
        handle, path = tempfile.mkstemp(
            prefix="repro-codes-", suffix=".i32", dir=spill_directory(self._spill_dir)
        )
        self._handle = os.fdopen(handle, "wb")
        self._path = path

    def _flush(self) -> None:
        """Spill the chunk buffer to the column's code file.

        The write trips the ``storage.spill`` fault point and runs under
        the bounded retry policy, so transient I/O (a briefly-full disk,
        an injected fault) is absorbed exactly like cache/checkpoint
        writes; permanent errors surface immediately.
        """
        if not self._chunk:
            return
        if self._handle is None:
            self._open_spill()
        payload = self._chunk.tobytes()

        def write() -> None:
            if FAULTS.armed:
                FAULTS.trip(STORAGE_SPILL)
            self._handle.write(payload)

        # Deferred import: the harness layer imports the relation layer,
        # so the reverse edge must not run at module import time.
        from ..harness.retry import RetryPolicy

        RetryPolicy().call(write, key=f"storage.spill:{self._path}")
        self._spilled += len(payload)
        _trace.count("storage.spilled_bytes", len(payload))
        del self._chunk[:]

    def finish(self) -> EncodedColumn:
        """Seal the column and return its :class:`EncodedColumn`."""
        if self.storage != "mmap":
            return EncodedColumn(self._codes, self._dictionary, storage="encoded")
        self._flush()
        if self._handle is None:
            # Zero rows: nothing was ever spilled; an empty mmap is
            # invalid, so degrade to an (empty) in-memory column.
            return EncodedColumn(array("i"), self._dictionary, storage="encoded")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._handle = None
        with open(self._path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        codes = memoryview(mapped).cast("i")
        return EncodedColumn(
            codes,
            self._dictionary,
            storage="mmap",
            spill_path=self._path,
            mapped=mapped,
        )

    def abort(self) -> None:
        """Discard a half-built column (close and unlink any spill file)."""
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None
        if self._path is not None:
            try:
                os.unlink(self._path)
            except OSError:
                pass
            self._path = None


def encode_column(
    values: Sequence[Any],
    storage: str | None = None,
    spill_dir: str | None = None,
) -> EncodedColumn:
    """Dictionary-encode one materialized column."""
    encoder = ColumnEncoder(storage=storage, spill_dir=spill_dir)
    try:
        encoder.extend(iter(values))
        return encoder.finish()
    except BaseException:
        encoder.abort()
        raise


def encode_relation(
    relation: "Any",
    storage: str | None = None,
    spill_dir: str | None = None,
) -> "Any":
    """Attach dictionary encodings to ``relation`` (in place) and return it.

    Columns that are already :class:`EncodedColumn` instances are kept;
    plain columns gain a sidecar encoding, leaving the object tuples
    untouched (``objects`` mode is therefore a no-op).  The substrate
    (:class:`~repro.pli.index.RelationIndex`) consults
    ``relation.encoding(i)`` and takes the code path whenever one exists.
    """
    mode = resolve_storage(storage) if storage is not None else ACTIVE
    if mode == "objects":
        return relation
    if all(
        relation.encoding(index) is not None
        for index in range(relation.n_columns)
    ):
        return relation
    with _trace.span(
        "storage.encode",
        relation=relation.name,
        columns=relation.n_columns,
        rows=relation.n_rows,
        storage=mode,
    ):
        encodings = []
        for index in range(relation.n_columns):
            existing = relation.encoding(index)
            if existing is not None:
                encodings.append(existing)
                continue
            column = encode_column(
                relation.column(index), storage=mode, spill_dir=spill_dir
            )
            encodings.append(column)
            tracer = _trace.ACTIVE
            if tracer is not None:
                tracer.count("storage.encoded_columns")
                tracer.count(
                    "storage.dictionary_entries", len(column.dictionary)
                )
        relation._encodings = tuple(encodings)
    return relation
