"""Relational substrate: relations, column sets, and CSV I/O."""

from .columnset import ColumnSet
from .csv_io import read_csv, read_csv_text, write_csv
from .relation import Relation, SchemaError

__all__ = [
    "ColumnSet",
    "Relation",
    "SchemaError",
    "read_csv",
    "read_csv_text",
    "write_csv",
]
