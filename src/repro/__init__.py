"""repro — holistic data profiling.

A from-scratch reproduction of *Holistic Data Profiling: Simultaneous
Discovery of Various Metadata* (Ehrlich et al., EDBT 2016): the MUDS
algorithm, the Holistic FUN adaption, the sequential SPIDER/DUCC/FUN
baseline, and the TANE comparator, together with every substrate they
need (relations, PLIs, lattice search, prefix trees) and the paper's
benchmark suite.

Quickstart::

    from repro import Relation, profile

    relation = Relation.from_rows(
        ["city", "zip", "state"],
        [("Portland", "97201", "OR"), ("Salem", "97301", "OR")],
    )
    result = profile(relation)
    print(result.inds, result.uccs, result.fds)
"""

from .core.adaptive import AdaptiveProfiler
from .core.baseline import BaselineProfiler, SequentialBaseline
from .core.holistic_fun import HolisticFun
from .core.muds import Muds
from .core.profiler import choose_algorithm, profile
from .core.statistics import ColumnStatistics, profile_statistics
from .guard import Budget, BudgetExceeded, guarded
from .metadata import FD, IND, UCC, ProfilingResult
from .relation import ColumnSet, Relation, read_csv, read_csv_text, write_csv

__version__ = "1.0.0"

__all__ = [
    "AdaptiveProfiler",
    "BaselineProfiler",
    "Budget",
    "BudgetExceeded",
    "ColumnSet",
    "ColumnStatistics",
    "FD",
    "HolisticFun",
    "IND",
    "Muds",
    "ProfilingResult",
    "Relation",
    "SequentialBaseline",
    "UCC",
    "choose_algorithm",
    "guarded",
    "profile",
    "profile_statistics",
    "read_csv",
    "read_csv_text",
    "write_csv",
    "__version__",
]
