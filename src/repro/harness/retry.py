"""Bounded retry with exponential backoff and deterministic jitter.

The robustness layer touches three kinds of fallible I/O: result-cache
reads/writes, checkpoint-file saves/loads, and worker dispatch.  All of
them share a failure taxonomy — *transient* faults (a torn NFS read, a
briefly-full disk, an injected :class:`~repro.faults.FaultInjected`, a
worker that died once) are worth a bounded number of retries, while
*permanent* faults (a missing directory, a permission error, corrupt
semantics) must surface immediately so retries never mask a real bug.

Backoff is exponential with multiplicative jitter, and the jitter is
**deterministic**: it is derived from ``crc32(seed:key:attempt)`` rather
than a global RNG, so a replayed run backs off identically and the chaos
campaign's timing is reproducible bit-for-bit.  The ``sleep`` hook is
injectable so tests run the full policy without waiting.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

from .. import trace as _trace
from ..faults import FaultInjected

__all__ = ["RetryPolicy", "default_classify"]

#: Exception types that are permanent even though they subclass OSError:
#: retrying a missing file or a permission wall only wastes the budget.
_PERMANENT_OS_ERRORS = (
    FileNotFoundError,
    PermissionError,
    IsADirectoryError,
    NotADirectoryError,
)


def default_classify(error: BaseException) -> bool:
    """True when ``error`` is transient (worth retrying).

    Injected faults model transient infrastructure failure by definition
    (the fault registry fires a point once, so the retry *should*
    recover).  Generic :class:`OSError` and :class:`TimeoutError` are
    transient — full disks drain, NFS hiccups pass — except the
    path-shape errors in :data:`_PERMANENT_OS_ERRORS`, which no retry can
    fix.  Everything else (``ValueError`` from corrupt JSON, programming
    errors) is permanent.
    """
    if isinstance(error, FaultInjected):
        return True
    if isinstance(error, _PERMANENT_OS_ERRORS):
        return False
    return isinstance(error, (OSError, TimeoutError))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-attempt retry with exponential backoff + deterministic jitter.

    ``attempts`` counts total tries (1 = no retry).  Delay before retry
    ``n`` (1-based) is ``min(base_delay * 2**(n-1), max_delay)`` scaled by
    a jitter factor in ``[1 - jitter, 1 + jitter]`` drawn deterministically
    from ``(seed, key, n)``.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of operation ``key``."""
        raw = min(self.base_delay * (2 ** (attempt - 1)), self.max_delay)
        digest = zlib.crc32(f"{self.seed}:{key}:{attempt}".encode())
        fraction = digest / 0xFFFFFFFF
        return raw * (1.0 + self.jitter * (2.0 * fraction - 1.0))

    def call(
        self,
        fn: Callable[[], Any],
        *,
        key: str,
        classify: Callable[[BaseException], bool] | None = None,
    ) -> Any:
        """Run ``fn`` under this policy; return its result.

        Permanent errors (per ``classify``, default
        :func:`default_classify`) re-raise immediately.  Transient errors
        retry up to ``attempts`` total tries with backoff, then re-raise
        the last error (``retry.exhausted``).  A success after at least
        one failure bumps ``retry.recovered``.
        """
        classify = classify or default_classify
        for attempt in range(1, self.attempts + 1):
            try:
                result = fn()
            except BaseException as error:
                if not classify(error) or attempt == self.attempts:
                    if classify(error):
                        _trace.count("retry.exhausted")
                    raise
                pause = self.delay(key, attempt)
                _trace.count("retry.retries")
                _trace.event(
                    "retry.backoff",
                    key=key,
                    attempt=attempt,
                    delay=round(pause, 6),
                    error=type(error).__name__,
                )
                self.sleep(pause)
            else:
                if attempt > 1:
                    _trace.count("retry.recovered")
                return result
        raise AssertionError("unreachable")  # pragma: no cover
