"""Process-parallel sweep execution.

Every experiment in the evaluation (Fig. 6/7/8, Table 3) is a grid of
*independent* (workload × algorithm) cells, so the harness can fan sweep
points out to worker processes instead of running them on one core.  This
module is the dispatch layer under
:meth:`repro.harness.runner.ExperimentRunner.sweep(jobs=N) <repro.harness.runner.ExperimentRunner.sweep>`:

* A sweep point travels to the worker as a picklable :class:`PointTask` —
  a :class:`WorkloadSpec` (module-level builder + parameters, rebuilt in
  the worker, never a pickled relation), a :class:`FrameworkSpec`
  (factory + parameters, so profilers and their per-process
  :class:`~repro.pli.store.PliStore` instances are constructed inside the
  worker), the algorithm names, and an optional budget.  Budgets are
  re-armed per execution by :func:`repro.guard.guarded`, so each worker
  enforces its own copy.
* Results come back as the *serialized* record of a
  :class:`~repro.harness.runner.SweepPoint` (plain JSON-ready dicts of
  :class:`~repro.harness.framework.Execution` records), never as live
  objects, so the worker boundary has exactly the same fidelity as the
  sweep journal.
* The parent remains the single journal writer: workers never touch the
  JSONL file, completion order does not matter, and resume semantics are
  identical to a serial sweep.

Failure containment matches inline execution: algorithm-level failures
are already TL/ML/ERR cells (contained in the worker by
:meth:`Framework.run <repro.harness.framework.Framework.run>`), a crashing
workload builder becomes a point-level ``error`` (recorded in the worker),
and a *dying worker process* — the one failure mode a single process never
has — is retried once in a fresh pool and then recorded as a point-level
``error`` too.  No :class:`BrokenProcessPool` ever escapes to the caller,
and innocent points whose futures were collateral damage of another
point's crash are re-dispatched automatically.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator, Mapping

from .. import liveness as _liveness
from .. import trace as _trace
from ..guard import Budget
from ..pli import backend as _backend
from ..relation import encoded as _encoded
from ..relation.relation import Relation
from .framework import (
    Framework,
    MetadataDisagreement,
    default_framework,
    resolve_budget,
    verify_agreement,
)
from .checkpoint import CheckpointStore
from .result_cache import ResultCache
from .watchdog import Watchdog

__all__ = [
    "WorkloadSpec",
    "FrameworkSpec",
    "PointTask",
    "run_sweep_points",
    "default_jobs",
    "ensure_picklable",
]

#: Attempts per point before a dying worker becomes a point-level error:
#: one in the shared pool, one isolated retry.  The isolated retry (a
#: fresh single-worker pool per suspect) separates "collateral damage of
#: another point's crash" from "this point reproducibly kills its worker"
#: — a broken pool fails *every* in-flight future, so the first round
#: cannot tell culprit from victim.
WORKER_ATTEMPTS = 2


def default_jobs() -> int:
    """Default worker count: the cores this process may run on."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # non-Linux fallback
        return os.cpu_count() or 1


def ensure_picklable(value: object, role: str) -> None:
    """Raise a helpful :class:`TypeError` when ``value`` cannot cross a
    process boundary (lambdas, closures, open handles...)."""
    try:
        pickle.dumps(value)
    except Exception as error:
        raise TypeError(
            f"{role} must be picklable to run in worker processes "
            f"(module-level functions, plain data): {type(error).__name__}: "
            f"{error}"
        ) from error


@dataclass(frozen=True)
class WorkloadSpec:
    """Picklable description of a workload builder.

    ``builder`` must be a module-level callable (pickled by reference);
    the relation it returns is built *inside* the worker, so sweeps never
    ship row data across the process boundary.  The point label is passed
    as the first positional argument, or as the keyword named by
    ``label_kwarg``; ``kwargs`` supplies the fixed parameters.

    A spec is itself callable with a label, so it can serve directly as
    the ``workload`` argument of a serial sweep — one object describes the
    workload in both execution modes.
    """

    builder: Callable[..., Relation]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    label_kwarg: str | None = None

    def build(self, label: object) -> Relation:
        """Construct the relation for one sweep point."""
        if self.label_kwarg is not None:
            return self.builder(**{self.label_kwarg: label}, **dict(self.kwargs))
        return self.builder(label, **dict(self.kwargs))

    __call__ = build


@dataclass(frozen=True)
class FrameworkSpec:
    """Picklable description of a framework factory.

    Workers rebuild the full :class:`~repro.harness.framework.Framework`
    from this spec, which is what gives every worker process its own
    profiler instances, its own :class:`~repro.pli.store.PliStore`
    substrate, and its own kernel counters — nothing warm is shared across
    the process boundary.
    """

    factory: Callable[..., Framework] = default_framework
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def build(self) -> Framework:
        """Construct a fresh framework in the calling process."""
        return self.factory(**dict(self.kwargs))


@dataclass(frozen=True)
class PointTask:
    """Everything a worker needs to execute one sweep point."""

    label: object
    workload: WorkloadSpec
    algorithms: tuple[str, ...]
    framework: FrameworkSpec
    budget: Budget | Mapping[str, Budget] | None = None
    check_agreement: bool = True
    #: Result-cache directory (opened per worker), or ``None`` to disable.
    cache_root: str | None = None
    cache_config: str | None = None
    #: Collect this point's structured trace in the worker and ship it
    #: back with the serialized record (set when the parent is tracing).
    trace: bool = False
    #: Kernel backend to arm in the worker before executing the point
    #: (``None`` keeps the worker's import-time default).  Backend
    #: selection is process-global, so the parent's choice must travel
    #: explicitly — a spawned worker does not inherit it.
    pli_backend: str | None = None
    #: Column-storage mode to arm in the worker before executing the
    #: point (``None`` keeps the worker's import-time default).  Same
    #: rationale as ``pli_backend``: the mode is process-global and must
    #: travel explicitly across a spawn boundary.
    storage: str | None = None
    #: Directory of per-pid liveness files for the parent's hung-worker
    #: watchdog (``None`` leaves the worker silent); filled in by
    #: :func:`run_sweep_points` when a watchdog grace is armed.
    heartbeat_dir: str | None = None
    #: Minimum spacing between heartbeat file touches, in seconds.
    heartbeat_interval: float = 1.0
    #: Checkpoint-store directory for intra-execution restart snapshots
    #: (opened per worker), or ``None`` to disable.
    checkpoint_root: str | None = None


def execute_point_record(task: PointTask) -> dict[str, Any]:
    """Worker entry point: run one sweep point, return its serialized
    :class:`~repro.harness.runner.SweepPoint` record.

    Mirrors the inline loop of
    :meth:`~repro.harness.runner.ExperimentRunner.sweep` exactly: a
    crashing workload builder or a metadata disagreement becomes the
    point's ``error``; algorithm failures are contained by the framework
    as TL/ML/ERR executions.  Runs inside the worker process.
    """
    from .runner import SweepPoint  # deferred: runner imports this module

    if task.heartbeat_dir is not None:
        # Arm this worker's liveness heartbeat: the guard checkpoint hook
        # inside every lattice loop refreshes the per-pid file, so the
        # parent's watchdog sees a fresh mtime while the point progresses.
        _liveness.arm(
            os.path.join(task.heartbeat_dir, f"{os.getpid()}.hb"),
            interval=task.heartbeat_interval,
            label=str(task.label),
        )
    try:
        return _execute_point_record(task, SweepPoint)
    finally:
        if task.heartbeat_dir is not None:
            _liveness.disarm()


def _execute_point_record(task: PointTask, SweepPoint) -> dict[str, Any]:
    if task.pli_backend is not None:
        # Re-arm the parent's kernel backend in this worker.  Safe under
        # fork *and* spawn: set_backend is idempotent, and an unusable
        # explicit choice should fail the point loudly rather than let
        # workers silently compute on a different kernel than the parent.
        _backend.set_backend(task.pli_backend)
    if task.storage is not None:
        # Same contract for the storage mode: the worker's substrate must
        # encode (or not) exactly like the parent's would have.
        _encoded.set_storage(task.storage)
    if task.trace and _trace.ACTIVE is None:
        # The parent was tracing when it built the task; bring this
        # worker's process-local tracer up so the point's events exist to
        # ship back.  (A forked worker may instead have inherited a live
        # tracer including the parent's old events — the rebased capture
        # below slices past them either way.)
        _trace.enable()
    point = SweepPoint(label=task.label)
    with _trace.capture(drain=True) as captured:
        with _trace.span("sweep.point", label=str(task.label)):
            try:
                relation = task.workload.build(task.label)
            except Exception as error:  # same containment as inline sweeps
                point.error = (
                    f"workload failed: {type(error).__name__}: {error}"
                )
            else:
                framework = task.framework.build()
                cache = (
                    ResultCache(task.cache_root) if task.cache_root else None
                )
                checkpoints = (
                    CheckpointStore(task.checkpoint_root)
                    if task.checkpoint_root
                    else None
                )
                for name in task.algorithms:
                    point.executions.append(
                        framework.run(
                            name,
                            relation,
                            budget=resolve_budget(task.budget, name),
                            cache=cache,
                            cache_config=task.cache_config,
                            checkpoints=checkpoints,
                        )
                    )
                if task.check_agreement:
                    try:
                        verify_agreement(point.executions)
                    except MetadataDisagreement as error:
                        point.error = str(error)
    if task.trace:
        point.trace = captured.events
    return point.to_record()


def run_sweep_points(
    tasks: list[PointTask],
    jobs: int,
    watchdog_grace: float | None = None,
) -> Iterator[tuple[object, dict[str, Any]]]:
    """Execute sweep points on a process pool, yielding ``(label, record)``
    pairs in *completion* order (the caller re-orders and journals).

    Pool breakage is contained here: when a worker dies, every affected
    task is re-dispatched once in a fresh pool, and a task whose worker
    dies again is yielded as a point-level error record — the exact
    ``error`` semantics a crashing workload builder has inline.

    With ``watchdog_grace`` set, every worker arms a per-pid liveness
    heartbeat (:mod:`repro.liveness`) in a shared temporary directory and
    a parent-side :class:`~repro.harness.watchdog.Watchdog` thread kills
    any worker whose heartbeat stays silent that many seconds.  The kill
    surfaces as :class:`BrokenProcessPool`, so a *hang* degrades into the
    already-contained death path: innocent in-flight points complete in
    the isolation round, and a point that hangs its worker again is
    recorded as a point-level error.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    heartbeat_dir: str | None = None
    if watchdog_grace is not None:
        if watchdog_grace <= 0:
            raise ValueError(
                f"watchdog_grace must be positive, got {watchdog_grace}"
            )
        heartbeat_dir = tempfile.mkdtemp(prefix="repro-heartbeats-")
        # Several beats must fit into one grace period so scheduler
        # jitter never reads as a hang.
        interval = min(1.0, max(0.05, watchdog_grace / 4.0))
        tasks = [
            replace(task, heartbeat_dir=heartbeat_dir, heartbeat_interval=interval)
            for task in tasks
        ]
    for task in tasks:
        ensure_picklable(task, f"sweep point {task.label!r}")

    try:
        yield from _run_rounds(tasks, jobs, watchdog_grace, heartbeat_dir)
    finally:
        if heartbeat_dir is not None:
            shutil.rmtree(heartbeat_dir, ignore_errors=True)


def _pool_watchdog(
    heartbeat_dir: str | None,
    grace: float | None,
    executor: ProcessPoolExecutor,
):
    """A started watchdog bound to ``executor``'s live pids, or a no-op."""
    if heartbeat_dir is None or grace is None:
        return nullcontext()
    # _processes is the executor's {pid: Process} map; it may be None or
    # mid-mutation during teardown — Watchdog.scan tolerates a raising
    # pids_fn by skipping the scan.
    return Watchdog(
        heartbeat_dir, grace, pids_fn=lambda: list(executor._processes or ())
    )


def _run_rounds(
    tasks: list[PointTask],
    jobs: int,
    watchdog_grace: float | None,
    heartbeat_dir: str | None,
) -> Iterator[tuple[object, dict[str, Any]]]:
    # Round 1: everything on one shared pool.  A worker death breaks the
    # whole pool, failing every in-flight future, so pool-breakage
    # failures only mark their tasks as *suspects* for round 2.
    suspects: list[int] = []
    executor = ProcessPoolExecutor(max_workers=jobs)
    try:
        with _pool_watchdog(heartbeat_dir, watchdog_grace, executor):
            futures: dict[Any, int] = {}
            for index, task in enumerate(tasks):
                try:
                    futures[executor.submit(execute_point_record, task)] = index
                except BrokenProcessPool:
                    # Pool already broken before this task went out.
                    suspects.append(index)
            unfinished = set(futures)
            while unfinished:
                finished, unfinished = wait(
                    unfinished, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    index = futures[future]
                    try:
                        yield tasks[index].label, future.result()
                    except BrokenProcessPool:
                        suspects.append(index)
                    except Exception as error:
                        # Worker-side infrastructure failure that is not a
                        # process death (e.g. an unpicklable return value):
                        # deterministic, no point retrying.
                        yield tasks[index].label, _error_record(
                            tasks[index], error, attempts=1
                        )
    finally:
        executor.shutdown(wait=False, cancel_futures=True)

    # Round 2: each suspect alone in a fresh single-worker pool.  An
    # innocent victim of someone else's crash completes here; a point
    # that kills its worker again is the reproducible culprit and is
    # recorded as a point-level error.  The watchdog stays armed so a
    # point that *hangs* its solo worker is killed (and recorded) too.
    for index in sorted(suspects):
        task = tasks[index]
        with ProcessPoolExecutor(max_workers=1) as solo:
            with _pool_watchdog(heartbeat_dir, watchdog_grace, solo):
                try:
                    yield task.label, solo.submit(
                        execute_point_record, task
                    ).result()
                except Exception as error:
                    yield task.label, _error_record(
                        task, error, attempts=WORKER_ATTEMPTS
                    )


def _error_record(
    task: PointTask, error: Exception, attempts: int
) -> dict[str, Any]:
    """Point-level error record for a task whose worker process died."""
    from .runner import SweepPoint

    cause = str(error).strip() or "worker process died"
    noun = "attempt" if attempts == 1 else "attempts"
    point = SweepPoint(
        label=task.label,
        error=(
            f"worker failed after {attempts} {noun}: "
            f"{type(error).__name__}: {cause}"
        ),
    )
    return point.to_record()
