"""Plain-text reporting for experiment runs.

Benchmarks print the same rows/series the paper's figures and tables show;
this module renders them as aligned ASCII tables (console) and Markdown
tables (EXPERIMENTS.md).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["ascii_table", "markdown_table", "series_block"]


def _stringify(rows: Sequence[Sequence[object]]) -> list[list[str]]:
    return [
        ["" if cell is None else (f"{cell:.3g}" if isinstance(cell, float) else str(cell))
         for cell in row]
        for row in rows
    ]


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned fixed-width table."""
    text_rows = _stringify(rows)
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    body = "\n".join(line(row) for row in text_rows)
    return f"{line(list(headers))}\n{rule}\n{body}" if body else line(list(headers))


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavored Markdown table."""
    text_rows = _stringify(rows)
    head = "| " + " | ".join(headers) + " |"
    sep = "|" + "|".join("---" for _ in headers) + "|"
    body = "\n".join("| " + " | ".join(row) + " |" for row in text_rows)
    return f"{head}\n{sep}\n{body}" if body else f"{head}\n{sep}"


def series_block(title: str, x_label: str, series: dict[str, list[tuple[object, float]]]) -> str:
    """Render figure-style series (one line per (x, y) point per series).

    This is the textual equivalent of a paper figure: for each named
    series, the x values (rows, columns, ...) and measured values.
    """
    lines = [title]
    for name, points in series.items():
        lines.append(f"  series {name}:")
        for x, y in points:
            lines.append(f"    {x_label}={x}: {y:.3f}")
    return "\n".join(lines)
