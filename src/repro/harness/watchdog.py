"""Parent-side hung-worker watchdog for parallel sweeps.

Worker-death containment (PR 3) handles a worker that dies; this module
handles a worker that goes *silent*.  Each pool worker arms a
:class:`repro.liveness.Heartbeat` that refreshes a per-pid file from the
cooperative guard checkpoint inside every lattice loop.  The parent runs
one :class:`Watchdog` thread that stats those files: a worker whose file
has not been touched for ``grace`` seconds, and whose pid still belongs
to the pool, is declared hung and killed with ``SIGKILL``.  The pool then
surfaces the death as :class:`~concurrent.futures.process.BrokenProcessPool`,
and the existing two-round suspects/isolation dispatch re-runs the
in-flight points — so a hang degrades into the already-tested death path
instead of stalling the sweep forever.

The watchdog never kills a pid it was not told about (``pids_fn`` is the
pool's live process set), tolerates already-dead processes, and removes
the stale file after the kill so one hang is counted once.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from pathlib import Path
from typing import Callable, Iterable

from .. import trace as _trace

__all__ = ["Watchdog"]


class Watchdog:
    """Kill pool workers whose heartbeat file goes stale.

    Parameters
    ----------
    heartbeat_dir:
        Directory of ``<pid>.hb`` files written by the workers.
    grace:
        Seconds of heartbeat silence after which a worker is hung.
    pids_fn:
        Zero-arg callable returning the pids the watchdog may kill
        (the executor's current process set); anything else in the
        directory is ignored.
    poll:
        Scan interval; defaults to ``grace / 4`` bounded to [0.05, 1.0].
    """

    def __init__(
        self,
        heartbeat_dir: str | os.PathLike[str],
        grace: float,
        pids_fn: Callable[[], Iterable[int]],
        poll: float | None = None,
    ):
        if grace <= 0:
            raise ValueError(f"grace must be positive, got {grace}")
        self.heartbeat_dir = Path(heartbeat_dir)
        self.grace = grace
        self.pids_fn = pids_fn
        self.poll = poll if poll is not None else min(1.0, max(0.05, grace / 4.0))
        self.kills: list[int] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- one scan -----------------------------------------------------------

    def scan(self) -> list[int]:
        """Stat every heartbeat file once; kill + return stale pids."""
        killed: list[int] = []
        try:
            entries = list(self.heartbeat_dir.glob("*.hb"))
        except OSError:
            return killed
        try:
            live = set(self.pids_fn())
        except Exception:
            # The pool is tearing down; its workers are no longer ours
            # to kill.
            return killed
        now = time.time()
        for entry in entries:
            try:
                pid = int(entry.stem)
            except ValueError:
                continue
            if pid not in live:
                continue
            try:
                stale = now - entry.stat().st_mtime
            except OSError:
                continue  # worker finished and cleared its file mid-scan
            if stale < self.grace:
                continue
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                continue
            try:
                entry.unlink()
            except OSError:
                pass
            killed.append(pid)
            self.kills.append(pid)
            _trace.count("watchdog.kills")
            _trace.event("watchdog.kill", pid=pid, stale=round(stale, 3))
        return killed

    # -- thread lifecycle ---------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.poll):
            self.scan()

    def start(self) -> "Watchdog":
        self._thread = threading.Thread(
            target=self._run, name="repro-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "Watchdog":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
