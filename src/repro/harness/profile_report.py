"""Human-readable profile reports.

Turns one profiling run (dependencies + column statistics) into a
Markdown document — the kind of artifact a data-integration or
data-cleansing workflow (the applications motivating the paper) hands to
an engineer.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from ..core.statistics import profile_statistics
from ..metadata.results import ProfilingResult
from ..pli.index import RelationIndex
from ..relation.relation import Relation
from ..trace import trace_summary
from .framework import Execution
from .reporting import markdown_table

__all__ = ["render_profile_report", "render_trace_table"]


def render_profile_report(
    relation: Relation,
    result: ProfilingResult,
    index: RelationIndex | None = None,
    max_listed: int = 25,
    execution: Execution | None = None,
    trace: Sequence[Mapping[str, Any]] | None = None,
) -> str:
    """Render a Markdown profile of ``relation`` from ``result``.

    ``max_listed`` caps each dependency listing (with an explicit
    "... and N more" line, never a silent cut).  Passing the
    ``execution`` the result came from adds a warning banner when the run
    did not complete (TL/ML/ERR) so partial listings are never mistaken
    for exhaustive ones.  ``trace`` — the structured events of the run
    (:mod:`repro.trace`) — adds a per-phase/per-level table with
    exclusive self-seconds and counters, the report's reproduction of the
    paper's Fig. 8 runtime breakdown.
    """
    lines: list[str] = [
        f"# Data profile: {relation.name}",
        "",
        f"{relation.n_columns} columns x {relation.n_rows} rows; "
        f"profiled in {result.total_seconds:.3f}s.",
        "",
    ]
    if execution is not None and not execution.ok:
        lines += [
            f"> **Incomplete run [{execution.marker}]** "
            f"({execution.status}): {execution.error}",
            "> Dependency listings below are partial — metadata discovered "
            "before the run was stopped.",
            "",
        ]
    lines += [
        "## Column statistics",
        "",
    ]
    statistics = profile_statistics(relation, index=index)
    lines.append(
        markdown_table(
            ["column", "distinct", "nulls", "unique", "constant", "top value"],
            [
                [
                    stat.name,
                    stat.distinct_count,
                    stat.null_count,
                    "yes" if stat.is_unique else "",
                    "yes" if stat.is_constant else "",
                    f"{stat.top_value!r} x{stat.top_frequency}",
                ]
                for stat in statistics
            ],
        )
    )

    lines += ["", "## Key candidates (minimal UCCs)", ""]
    lines += _listing(
        [str(ucc) for ucc in sorted(result.uccs, key=len)], max_listed,
        empty="(none — the relation contains duplicate rows)",
    )

    lines += ["", "## Functional dependencies (minimal)", ""]
    lines += _listing(
        [str(fd) for fd in sorted(result.fds, key=len)], max_listed,
        empty="(none)",
    )

    lines += ["", "## Inclusion dependencies (unary)", ""]
    lines += _listing([str(ind) for ind in result.inds], max_listed, empty="(none)")

    lines += ["", "## Phase timings", ""]
    lines.append(
        markdown_table(
            ["phase", "seconds"],
            [[phase, f"{seconds:.4f}"] for phase, seconds in result.phase_seconds.items()],
        )
    )

    counters = dict(result.counters)
    if index is not None:
        counters.update(index.kernel_counters())
    if counters:
        lines += ["", "## Kernel counters", ""]
        lines.append(
            markdown_table(
                ["counter", "value"],
                [
                    [name, f"{value:.3f}" if isinstance(value, float) else value]
                    for name, value in sorted(counters.items())
                ],
            )
        )
    if trace:
        lines += ["", "## Per-phase trace", ""]
        lines.append(render_trace_table(trace))
    return "\n".join(lines)


def render_trace_table(events: Sequence[Mapping[str, Any]]) -> str:
    """Markdown table of :func:`repro.trace.trace_summary` over ``events``.

    One row per phase (span name, split per lattice level), ordered by
    descending exclusive self-time so the dominant phase leads — the
    Fig. 8 reading order.  The counters column compacts each phase's
    rolled-up counters (``name=value``, sorted)."""
    summary = trace_summary(events)
    rows = []
    for phase, entry in sorted(
        summary.items(), key=lambda item: -item[1]["self_seconds"]
    ):
        counters = " ".join(
            f"{name}={_compact(value)}"
            for name, value in sorted(entry["counters"].items())
        )
        rows.append(
            [
                phase,
                entry["count"],
                f"{entry['seconds']:.4f}",
                f"{entry['self_seconds']:.4f}",
                counters,
            ]
        )
    return markdown_table(
        ["phase", "count", "seconds", "self seconds", "counters"], rows
    )


def _compact(value: int | float) -> str:
    return f"{value:.3f}" if isinstance(value, float) else str(value)


def _listing(items: list[str], max_listed: int, empty: str) -> list[str]:
    if not items:
        return [empty]
    shown = [f"* {item}" for item in items[:max_listed]]
    if len(items) > max_listed:
        shown.append(f"* ... and {len(items) - max_listed} more")
    return shown
