"""Harness face of the fault-injection registry (see :mod:`repro.faults`).

The registry itself lives in the import-order-neutral :mod:`repro.faults`
so the CSV reader and the PLI cache can trip fault points without
importing the harness; this module re-exports the public names and adds
the environment gate used by CI: the dedicated fault-injection test suite
runs only when ``REPRO_FAULTS=1`` (a second CI step), keeping the tier-1
job lean while the failure paths still get exercised on every push.
"""

from __future__ import annotations

import os

from ..faults import (
    CACHE_PUT,
    CSV_READ,
    FAULT_POINTS,
    FAULTS,
    PROFILER_STEP,
    FaultInjected,
    FaultRegistry,
)

__all__ = [
    "CACHE_PUT",
    "CSV_READ",
    "FAULT_POINTS",
    "FAULTS",
    "PROFILER_STEP",
    "FaultInjected",
    "FaultRegistry",
    "fault_suite_enabled",
]


def fault_suite_enabled() -> bool:
    """True when the dedicated fault-injection suite should run
    (``REPRO_FAULTS=1`` in the environment)."""
    return os.environ.get("REPRO_FAULTS") == "1"
