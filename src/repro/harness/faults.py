"""Harness face of the fault-injection registry (see :mod:`repro.faults`).

The registry itself lives in the import-order-neutral :mod:`repro.faults`
so the CSV reader and the PLI cache can trip fault points without
importing the harness.  This module used to mirror the point constants by
hand, which meant every new point had to be registered twice (and PR 7's
``checkpoint.*`` / ``result_cache.*`` points would have made the twin
lists drift).  It is now a *dynamic* deprecation re-export: any public
name of :mod:`repro.faults` resolves here through :pep:`562` module
``__getattr__``, so fault points are registered in exactly one place.

What this module adds on top are the environment gates used by CI: the
dedicated fault-injection suite runs only when ``REPRO_FAULTS=1`` and the
chaos campaign only when ``REPRO_CHAOS=1`` (separate CI steps), keeping
the tier-1 job lean while the failure paths still get exercised on every
push.
"""

from __future__ import annotations

import os
from typing import Any

from .. import faults as _faults

__all__ = list(_faults.__all__) + [
    "chaos_suite_enabled",
    "fault_suite_enabled",
]


def __getattr__(name: str) -> Any:
    """Delegate the registry's public names to :mod:`repro.faults`.

    Restricted to ``repro.faults.__all__`` so typos still raise
    :class:`AttributeError` instead of silently resolving to registry
    internals.
    """
    if name in _faults.__all__:
        return getattr(_faults, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))


def fault_suite_enabled() -> bool:
    """True when the dedicated fault-injection suite should run
    (``REPRO_FAULTS=1`` in the environment)."""
    return os.environ.get("REPRO_FAULTS") == "1"


def chaos_suite_enabled() -> bool:
    """True when the chaos campaign should run (``REPRO_CHAOS=1``)."""
    return os.environ.get("REPRO_CHAOS") == "1"
