"""Experiment runner: parameter sweeps over datasets × algorithms.

The evaluation section's experiments are all of the same shape: build a
workload for each point of a parameter sweep (rows for Fig. 6, columns for
Fig. 7, one dataset per Table 3 row), run a set of algorithms on it, and
collect runtimes and result counts.  :class:`ExperimentRunner` factors that
loop out of the individual benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..relation.relation import Relation
from .framework import Execution, Framework

__all__ = ["SweepPoint", "ExperimentRunner"]


@dataclass(slots=True)
class SweepPoint:
    """One sweep point: a label (x value) and its executions."""

    label: object
    executions: list[Execution] = field(default_factory=list)

    def seconds(self, algorithm: str) -> float:
        """Runtime of one algorithm at this point."""
        for execution in self.executions:
            if execution.algorithm == algorithm:
                return execution.seconds
        raise KeyError(f"no execution of {algorithm!r} at point {self.label!r}")

    def counts(self) -> tuple[int, int, int]:
        """(#INDs, #UCCs, #FDs) from the first full profiler at this point.

        Only full (non-``fd_only``) profilers report all three metadata
        types; an FD-only execution (TANE) must never supply the counts —
        it would mis-report ``(0, 0, #FDs)`` even when the dataset has
        INDs and UCCs.  Raises :class:`ValueError` when the point holds no
        full-profiler execution at all.
        """
        for execution in self.executions:
            if not execution.fd_only:
                return execution.counts
        executed = [execution.algorithm for execution in self.executions]
        raise ValueError(
            f"no full-profiler execution at point {self.label!r}; "
            f"executed algorithms: {executed or 'none'}"
        )


class ExperimentRunner:
    """Run algorithms over a workload sweep and collect the series."""

    def __init__(self, framework: Framework, algorithms: tuple[str, ...] | None = None):
        self.framework = framework
        self.algorithms = algorithms or framework.algorithms

    def sweep(
        self,
        points: list[object],
        workload: Callable[[object], Relation],
        check_agreement: bool = True,
    ) -> list[SweepPoint]:
        """Execute all algorithms at every sweep point.

        ``workload`` maps a point label (row count, column count, dataset
        name, ...) to the relation profiled at that point.
        """
        results: list[SweepPoint] = []
        for label in points:
            relation = workload(label)
            executions = self.framework.run_all(
                relation, names=self.algorithms, check_agreement=check_agreement
            )
            results.append(SweepPoint(label=label, executions=executions))
        return results

    @staticmethod
    def series(points: list[SweepPoint], algorithm: str) -> list[tuple[object, float]]:
        """Extract one algorithm's (x, seconds) series from a sweep."""
        return [(point.label, point.seconds(algorithm)) for point in points]
