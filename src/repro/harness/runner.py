"""Experiment runner: parameter sweeps over datasets × algorithms.

The evaluation section's experiments are all of the same shape: build a
workload for each point of a parameter sweep (rows for Fig. 6, columns for
Fig. 7, one dataset per Table 3 row), run a set of algorithms on it, and
collect runtimes and result counts.  :class:`ExperimentRunner` factors that
loop out of the individual benchmarks.

Long sweeps must survive failure: each algorithm runs inside the
framework's crash containment (a blown budget or crash becomes a TL/ML/ERR
cell rather than aborting the sweep), a workload builder that itself dies
yields a point-level error entry, and with a :class:`SweepJournal` every
finished point is appended to a JSONL file as soon as it completes — a
killed sweep re-run with the same journal resumes, re-executing only the
points that have no record yet.

With ``jobs > 1`` the unfinished points are dispatched to worker
processes (:mod:`repro.harness.parallel`); the parent remains the single
journal writer, so the crash-safety and resume story is identical in
both modes, and a :class:`~repro.harness.result_cache.ResultCache`
short-circuits already-profiled cells in either mode.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from .. import trace as _trace
from ..guard import Budget
from ..pli import backend as _pli_backend
from ..relation import encoded as _storage
from ..relation.relation import Relation
from .framework import (
    Execution,
    Framework,
    MetadataDisagreement,
    resolve_budget,
    verify_agreement,
)
from .reporting import ascii_table
from .signals import graceful_shutdown

if TYPE_CHECKING:  # imported lazily at runtime (parallel imports runner)
    from .checkpoint import CheckpointStore
    from .parallel import FrameworkSpec
    from .result_cache import ResultCache

__all__ = ["SweepPoint", "SweepJournal", "ExperimentRunner", "sweep_table"]


@dataclass(slots=True)
class SweepPoint:
    """One sweep point: a label (x value) and its executions.

    ``error`` is set when the point itself failed outside any single
    algorithm execution — the workload builder crashed, or the completed
    executions disagreed on the metadata.
    """

    label: object
    executions: list[Execution] = field(default_factory=list)
    #: Point-level failure (workload crash / metadata disagreement), if any.
    error: str | None = None
    #: Structured trace events of this point's executions (rebased per
    #: point; empty when tracing was disabled while the point ran).
    #: Parallel sweeps ship each worker's buffer back through this field,
    #: so serial and pooled traces land in the same place.
    trace: list[dict[str, Any]] = field(default_factory=list)

    def seconds(self, algorithm: str) -> float:
        """Runtime of one algorithm at this point."""
        for execution in self.executions:
            if execution.algorithm == algorithm:
                return execution.seconds
        executed = [execution.algorithm for execution in self.executions]
        raise KeyError(
            f"no execution of {algorithm!r} at point {self.label!r}; "
            f"executed algorithms: {executed or 'none'}"
        )

    def counts(self) -> tuple[int, int, int]:
        """(#INDs, #UCCs, #FDs) from the first *completed* full profiler.

        Only full (non-``fd_only``) profilers report all three metadata
        types; an FD-only execution (TANE) must never supply the counts —
        it would mis-report ``(0, 0, #FDs)`` even when the dataset has
        INDs and UCCs.  Truncated executions (TL/ML/ERR) are skipped for
        the same reason: their partial results undercount.  Raises
        :class:`ValueError` when the point holds no completed
        full-profiler execution at all.
        """
        for execution in self.executions:
            if not execution.fd_only and execution.ok:
                return execution.counts
        executed = [execution.algorithm for execution in self.executions]
        raise ValueError(
            f"no completed full-profiler execution at point {self.label!r}; "
            f"executed algorithms: {executed or 'none'}"
        )

    def cell(self, algorithm: str) -> str:
        """Report cell for one algorithm: seconds, or the TL/ML/ERR marker
        of a non-completed execution (Metanome's result-table notation)."""
        for execution in self.executions:
            if execution.algorithm == algorithm:
                return f"{execution.seconds:.3f}" if execution.ok else execution.marker
        return "-"

    # -- journal (de)serialization ----------------------------------------

    def to_record(self) -> dict[str, Any]:
        """JSON-ready form for the sweep journal.

        The trace rides along only when non-empty, so untraced journals
        keep their pre-tracing wire format byte for byte."""
        record: dict[str, Any] = {
            "label": self.label,
            "error": self.error,
            "executions": [execution.to_record() for execution in self.executions],
        }
        if self.trace:
            record["trace"] = self.trace
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "SweepPoint":
        """Rebuild a sweep point from its journal record."""
        return cls(
            label=record["label"],
            executions=[
                Execution.from_record(entry) for entry in record["executions"]
            ],
            error=record.get("error"),
            trace=list(record.get("trace", [])),
        )


def _label_key(label: object) -> str:
    """Canonical journal key of a point label (stable across processes)."""
    return json.dumps(label, sort_keys=True, default=str)


class SweepJournal:
    """Append-only JSONL checkpoint file for crash-safe sweeps.

    Every completed :class:`SweepPoint` is appended (and flushed to disk)
    the moment it finishes, so a killed sweep loses at most the point it
    was working on.  On load, a truncated trailing line — the signature of
    a crash mid-write — is tolerated and simply treated as absent.
    """

    def __init__(self, path: str | os.PathLike[str]):
        self.path = Path(path)

    def load(self) -> dict[str, SweepPoint]:
        """All finished points keyed by canonical label; ``{}`` if the
        journal does not exist yet."""
        points: dict[str, SweepPoint] = {}
        if not self.path.exists():
            return points
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    point = SweepPoint.from_record(record)
                except (ValueError, KeyError, TypeError):
                    # Torn write from a crash mid-append: skip the line and
                    # let the sweep re-run that point.
                    continue
                points[_label_key(point.label)] = point
        return points

    def append(self, point: SweepPoint) -> None:
        """Durably record one finished point.

        If the journal's final line was torn by an earlier crash (no
        trailing newline), a newline is inserted first so the new record
        never concatenates onto the torn fragment — the fragment stays an
        isolated unparseable line that :meth:`load` skips, instead of
        corrupting a *good* record.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        record = json.dumps(point.to_record(), default=str)
        with open(self.path, "a+b") as handle:
            size = handle.tell()
            if size > 0:
                handle.seek(size - 1)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(record.encode("utf-8") + b"\n")
            handle.flush()
            os.fsync(handle.fileno())

    def compact(self) -> int:
        """Rewrite the journal with one record per label (last write wins,
        first-seen order), dropping torn lines and superseded duplicates.

        Long-lived journals accumulate duplicates when points are re-run
        (e.g. after a config fix with ``resume=False`` semantics applied
        selectively) plus the occasional torn line from a crash.  The
        rewrite is atomic (temp file + :func:`os.replace`), so a crash
        mid-compaction leaves the original journal untouched.  Returns
        the number of lines dropped; 0 for a missing or clean journal.
        """
        if not self.path.exists():
            return 0
        order: list[str] = []
        latest: dict[str, SweepPoint] = {}
        lines = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                lines += 1
                try:
                    point = SweepPoint.from_record(json.loads(line))
                except (ValueError, KeyError, TypeError):
                    continue  # torn line: dropped by the rewrite
                key = _label_key(point.label)
                if key not in latest:
                    order.append(key)
                latest[key] = point
        temporary = self.path.with_name(f"{self.path.name}.tmp-{os.getpid()}")
        with open(temporary, "w", encoding="utf-8") as handle:
            for key in order:
                handle.write(
                    json.dumps(latest[key].to_record(), default=str) + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, self.path)
        return lines - len(order)


class ExperimentRunner:
    """Run algorithms over a workload sweep and collect the series."""

    def __init__(self, framework: Framework, algorithms: tuple[str, ...] | None = None):
        self.framework = framework
        self.algorithms = algorithms or framework.algorithms

    def sweep(
        self,
        points: list[object],
        workload: Callable[[object], Relation],
        check_agreement: bool = True,
        budget: Budget | Mapping[str, Budget] | None = None,
        journal: SweepJournal | None = None,
        resume: bool = True,
        jobs: int | None = None,
        framework_spec: "FrameworkSpec | None" = None,
        result_cache: "ResultCache | None" = None,
        cache_config: str | None = None,
        checkpoints: "CheckpointStore | None" = None,
        watchdog_grace: float | None = None,
        handle_signals: bool = False,
    ) -> list[SweepPoint]:
        """Execute all algorithms at every sweep point, crash-safely.

        ``workload`` maps a point label (row count, column count, dataset
        name, ...) to the relation profiled at that point.

        Each algorithm runs in isolation: budget exhaustion and crashes
        are contained by :meth:`Framework.run` as TL/ML/ERR executions,
        and a metadata disagreement among the completed executions is
        recorded in ``point.error`` instead of aborting the sweep.  Only a
        crashing ``workload`` builder leaves a point without executions
        (also recorded, not raised).

        ``budget`` is one shared :class:`~repro.guard.Budget` or a
        per-algorithm mapping.  With a ``journal``, every finished point
        is checkpointed to JSONL immediately; when ``resume`` (default)
        and the journal already holds a point's record, the point is
        restored from disk instead of re-executed.

        ``jobs`` > 1 dispatches the unfinished points to a process pool
        (:mod:`repro.harness.parallel`): ``workload`` must then be a
        picklable :class:`~repro.harness.parallel.WorkloadSpec` and
        ``framework_spec`` describes how workers rebuild the framework
        (default: :func:`~repro.harness.framework.default_framework`).
        The parent stays the only journal writer — workers return
        serialized point records, which are journaled here the moment
        they complete, so resume semantics are unchanged; the returned
        list always follows the order of ``points`` regardless of
        completion order.  A dying worker is retried once and then
        recorded as that point's ``error`` (never raised).

        ``result_cache`` short-circuits already-profiled
        ``(fingerprint, algorithm, config)`` cells from disk in both
        modes (unbudgeted executions only; see :meth:`Framework.run`).

        ``checkpoints`` adds *intra-execution* durability on top of the
        journal's per-point durability: each execution snapshots its
        traversal state at level/phase boundaries
        (:class:`~repro.harness.checkpoint.CheckpointStore`), so a killed
        sweep loses at most the work since the last boundary of the
        execution it was in, not the whole point.

        ``watchdog_grace`` (parallel mode only; default
        ``$REPRO_WATCHDOG_GRACE``) arms a parent-side hung-worker
        watchdog: a pool worker whose heartbeat goes silent for that many
        seconds is killed and its point re-dispatched through the
        existing suspect-isolation retry; a point that hangs its worker
        again is recorded as a point-level error.

        ``handle_signals`` wraps the sweep in
        :func:`~repro.harness.signals.graceful_shutdown`: SIGTERM/SIGINT
        raises :class:`~repro.harness.signals.Interrupted` at a safe
        boundary — the journal keeps every finished point, the active
        execution's checkpoint survives, and the interrupted point is
        *not* journaled (it re-runs, resuming from its checkpoint).
        """
        if watchdog_grace is None:
            env_grace = os.environ.get("REPRO_WATCHDOG_GRACE")
            if env_grace:
                watchdog_grace = float(env_grace)
        if handle_signals:
            with graceful_shutdown():
                return self.sweep(
                    points,
                    workload,
                    check_agreement=check_agreement,
                    budget=budget,
                    journal=journal,
                    resume=resume,
                    jobs=jobs,
                    framework_spec=framework_spec,
                    result_cache=result_cache,
                    cache_config=cache_config,
                    checkpoints=checkpoints,
                    watchdog_grace=watchdog_grace,
                    handle_signals=False,
                )
        finished = journal.load() if journal is not None and resume else {}
        restored: dict[str, SweepPoint] = {}
        pending: list[object] = []
        for label in points:
            point = finished.get(_label_key(label))
            if point is not None:
                restored[_label_key(label)] = point
            else:
                pending.append(label)

        if jobs is not None and jobs > 1 and pending:
            computed = self._sweep_parallel(
                pending,
                workload,
                check_agreement=check_agreement,
                budget=budget,
                journal=journal,
                jobs=jobs,
                framework_spec=framework_spec,
                result_cache=result_cache,
                cache_config=cache_config,
                checkpoints=checkpoints,
                watchdog_grace=watchdog_grace,
            )
        else:
            computed = {
                _label_key(label): self._run_point_inline(
                    label,
                    workload,
                    check_agreement=check_agreement,
                    budget=budget,
                    journal=journal,
                    result_cache=result_cache,
                    cache_config=cache_config,
                    checkpoints=checkpoints,
                )
                for label in pending
            }
        restored.update(computed)
        return [restored[_label_key(label)] for label in points]

    def _run_point_inline(
        self,
        label: object,
        workload: Callable[[object], Relation],
        check_agreement: bool,
        budget: Budget | Mapping[str, Budget] | None,
        journal: SweepJournal | None,
        result_cache: "ResultCache | None",
        cache_config: str | None,
        checkpoints: "CheckpointStore | None" = None,
    ) -> SweepPoint:
        """Execute one sweep point in this process (the serial path)."""
        point = SweepPoint(label=label)
        # Per-point capture (drained so a long sweep does not hold every
        # point's events twice) with rebased span ids: the same slice a
        # pool worker would ship back, so jobs=1 and jobs=N traces are
        # structurally identical.
        with _trace.capture(drain=True) as captured:
            with _trace.span("sweep.point", label=str(label)):
                try:
                    relation = workload(label)
                except Exception as error:  # record, don't abort the sweep
                    point.error = (
                        f"workload failed: {type(error).__name__}: {error}"
                    )
                else:
                    for name in self.algorithms:
                        point.executions.append(
                            self.framework.run(
                                name,
                                relation,
                                budget=resolve_budget(budget, name),
                                cache=result_cache,
                                cache_config=cache_config,
                                checkpoints=checkpoints,
                            )
                        )
                    if check_agreement:
                        try:
                            verify_agreement(point.executions)
                        except MetadataDisagreement as error:
                            point.error = str(error)
        point.trace = captured.events
        if journal is not None:
            journal.append(point)
        return point

    def _sweep_parallel(
        self,
        pending: list[object],
        workload: Callable[[object], Relation],
        check_agreement: bool,
        budget: Budget | Mapping[str, Budget] | None,
        journal: SweepJournal | None,
        jobs: int,
        framework_spec: "FrameworkSpec | None",
        result_cache: "ResultCache | None",
        cache_config: str | None,
        checkpoints: "CheckpointStore | None" = None,
        watchdog_grace: float | None = None,
    ) -> dict[str, SweepPoint]:
        """Dispatch unfinished points to worker processes; journal each
        serialized record as it completes (single writer, any order)."""
        from .parallel import (
            FrameworkSpec,
            PointTask,
            WorkloadSpec,
            run_sweep_points,
        )

        if not isinstance(workload, WorkloadSpec):
            raise TypeError(
                "a parallel sweep (jobs > 1) needs a picklable WorkloadSpec "
                "as its workload (module-level builder + parameters), got "
                f"{type(workload).__name__}; pass jobs=1 to keep an "
                "arbitrary callable"
            )
        tasks = [
            PointTask(
                label=label,
                workload=workload,
                algorithms=tuple(self.algorithms),
                framework=framework_spec or FrameworkSpec(),
                budget=budget,
                check_agreement=check_agreement,
                cache_root=str(result_cache.root) if result_cache else None,
                cache_config=cache_config,
                trace=_trace.ACTIVE is not None,
                pli_backend=_pli_backend.ACTIVE.name,
                storage=_storage.ACTIVE,
                checkpoint_root=str(checkpoints.root) if checkpoints else None,
            )
            for label in pending
        ]
        computed: dict[str, SweepPoint] = {}
        for label, record in run_sweep_points(
            tasks, jobs=jobs, watchdog_grace=watchdog_grace
        ):
            point = SweepPoint.from_record(record)
            if journal is not None:
                journal.append(point)
            # Workers executed in their own frameworks; mirror their
            # executions into the parent framework's log for reporting.
            self.framework.executions.extend(point.executions)
            computed[_label_key(label)] = point
        return computed

    @staticmethod
    def series(points: list[SweepPoint], algorithm: str) -> list[tuple[object, float]]:
        """Extract one algorithm's (x, seconds) series from a sweep."""
        return [(point.label, point.seconds(algorithm)) for point in points]


def sweep_table(
    points: Iterable[SweepPoint], algorithms: Iterable[str] | None = None
) -> str:
    """ASCII runtime table of a sweep, one row per point, one column per
    algorithm; non-completed executions render as their TL/ML/ERR marker
    and point-level failures as an ``error`` flag (Metanome-style cells)."""
    points = list(points)
    if algorithms is None:
        names: list[str] = []
        for point in points:
            for execution in point.executions:
                if execution.algorithm not in names:
                    names.append(execution.algorithm)
        algorithms = names
    algorithms = list(algorithms)
    rows = []
    for point in points:
        row = [str(point.label)]
        row += [point.cell(name) for name in algorithms]
        row.append("error" if point.error else "")
        rows.append(row)
    return ascii_table(["point", *algorithms, "status"], rows)
