"""Harness face of the structured-tracing layer (see :mod:`repro.trace`).

The tracer lives in the import-order-neutral :mod:`repro.trace` so the
PLI kernel and the algorithms can emit spans and counters without
importing the harness; this module re-exports the public names where
harness users look for them::

    from repro.harness.trace import enable, trace_summary

    tracer = enable()
    framework.run("muds", relation)
    table = trace_summary(tracer.events)
"""

from __future__ import annotations

from ..trace import (
    DEFAULT_SCHEMA,
    NULL_SPAN,
    Span,
    Tracer,
    active,
    capture,
    count,
    disable,
    enable,
    env_trace_path,
    event,
    read_jsonl,
    rebase,
    span,
    structural,
    summary_total_seconds,
    trace_summary,
    validate_events,
    validate_trace_file,
    write_jsonl,
)

__all__ = [
    "DEFAULT_SCHEMA",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "active",
    "capture",
    "count",
    "disable",
    "enable",
    "env_trace_path",
    "event",
    "read_jsonl",
    "rebase",
    "span",
    "structural",
    "summary_total_seconds",
    "trace_summary",
    "validate_events",
    "validate_trace_file",
    "write_jsonl",
]
