"""Harness face of the execution-guard layer (see :mod:`repro.guard`).

The guard machinery lives in the import-order-neutral :mod:`repro.guard`
so the PLI kernel and the algorithms can hook into it without importing
the harness; this module re-exports the public names where harness users
look for them::

    from repro.harness.budget import Budget

    framework.run("muds", relation, budget=Budget(deadline_seconds=30))
"""

from __future__ import annotations

from ..guard import (
    ESTIMATED_BYTES_PER_CLUSTERED_ROW,
    Budget,
    BudgetExceeded,
    active_budget,
    checkpoint,
    guarded,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "ESTIMATED_BYTES_PER_CLUSTERED_ROW",
    "active_budget",
    "checkpoint",
    "guarded",
]
