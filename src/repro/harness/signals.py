"""Graceful SIGTERM/SIGINT handling for the CLI and the sweep runner.

A profiling service gets terminated: deploys roll, schedulers preempt,
users hit Ctrl-C.  Today that tears the process down mid-write — the
journal's final line may be torn and the in-flight execution's progress
is simply lost.  With intra-execution checkpoints
(:mod:`repro.harness.checkpoint`) the last boundary is already durable,
so all a signal handler has to do is stop *cleanly*: unwind out of the
lattice loop, let the journal/checkpoint ``finally`` blocks flush, mark
the execution ``interrupted``, and exit with a distinct code so callers
can tell "stopped on request" from "crashed".

:class:`Interrupted` subclasses :class:`BaseException` (like
:class:`KeyboardInterrupt`) so the harness's ``except Exception``
containment cannot record an interruption as an ERR cell — it must
propagate to the top level.  The handler restores the previous handler
*before* raising, so a second signal kills the process hard — the
standard escape hatch when graceful shutdown itself hangs.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["EXIT_INTERRUPTED", "Interrupted", "graceful_shutdown"]

#: CLI exit code for a run stopped by SIGTERM/SIGINT (0 = ok, 2 = usage,
#: 3 = budget-stopped).
EXIT_INTERRUPTED = 4


class Interrupted(BaseException):
    """The process received a termination signal during an execution."""

    def __init__(self, signum: int):
        try:
            name = signal.Signals(signum).name
        except ValueError:  # pragma: no cover - exotic platform signal
            name = str(signum)
        super().__init__(f"interrupted by {name}")
        self.signum = signum


@contextmanager
def graceful_shutdown(
    signums: tuple[int, ...] = (signal.SIGTERM, signal.SIGINT),
) -> Iterator[None]:
    """Convert the given signals into :class:`Interrupted` in this scope.

    Outside the main thread (where :func:`signal.signal` is illegal) this
    degrades to a no-op, so library code can wrap sweeps unconditionally.
    Handlers are restored on exit; on the first signal the handler
    restores the *previous* handler before raising, so a second signal
    behaves as if this scope never existed (typically: hard kill).
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous: dict[int, object] = {}

    def _handler(signum: int, frame: object) -> None:
        for restore_signum, restore_handler in previous.items():
            signal.signal(restore_signum, restore_handler)
        raise Interrupted(signum)

    try:
        for signum in signums:
            previous[signum] = signal.signal(signum, _handler)
    except (ValueError, OSError):  # pragma: no cover - non-main interpreter
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        yield
        return
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
