"""Intra-execution checkpoint/restart for the lattice traversals.

A shared holistic run is a single point of failure: the paper's win is
that TANE/FUN/DUCC/SPIDER/MUDS reuse one PLI substrate, but that also
means a crash, hang, or budget stop throws away the *whole* traversal,
and sweep-level resume (PR 2/3) can only re-run the point from scratch.
This module makes the executions themselves restartable: each algorithm
snapshots its traversal state at natural boundaries — TANE/FUN after each
lattice level, DUCC/MUDS after each seed walk and hole round, SPIDER
every ``merge_stride`` merge steps, the profilers at phase edges — into a
versioned, fsynced, atomically-replaced checkpoint file keyed by relation
fingerprint + algorithm + config key.  A killed or budget-stopped run
resumes from the last completed boundary with **bit-identical** final
results.

Why bit-identical is achievable: a boundary captures everything the
traversal's future depends on — the frontier / pending seed queues, the
discovered metadata so far, the RNG state (:mod:`random` state round-trips
through JSON exactly), memo caches, and the algorithm-level counters.  A
kill loses only the in-flight level/walk, and the resume replays that
portion in full from the identical restored state, so both the discovered
metadata and the counter totals for the resumed portion match an
undisturbed run.  The kill-at-every-boundary matrix in
``tests/harness/test_checkpoint.py`` enforces this differentially.

Nested traversal state is composed with a *context-provider stack*: a
profiler (MUDS, HolisticFun, baseline) registers a provider for its own
phase progress, and every boundary saved by an inner algorithm (a FUN
level, a DUCC walk) embeds the providers' current states alongside its
own, so one file always holds a complete, consistent snapshot.  Each
envelope contains *only* the currently active contexts plus the leaf
stage — stale stages from earlier phases never linger.

Checkpoint I/O runs under the transient-fault
:class:`~repro.harness.retry.RetryPolicy` and trips the
``checkpoint.save`` / ``checkpoint.load`` fault points, so the injection
campaign exercises the torn-write paths.  The names the algorithms
themselves touch (the :data:`~repro.checkpointing.ACTIVE` session handle,
:class:`~repro.checkpointing.SimulatedCrash`, the JSON state helpers)
live in the import-order-neutral :mod:`repro.checkpointing` — the same
layering as :mod:`repro.guard` / :mod:`repro.harness.budget` — and are
re-exported here as the harness face.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from .. import trace as _trace
from ..checkpointing import (  # noqa: F401  (harness face re-exports)
    SimulatedCrash,
    active_session,
    mask_dict,
    mask_items,
    pli_from_state,
    pli_state,
    rng_state_from_json,
    rng_state_to_json,
)
from ..faults import CHECKPOINT_LOAD, CHECKPOINT_SAVE, FAULTS
from .result_cache import config_key
from .retry import RetryPolicy

__all__ = [
    "CheckpointSession",
    "CheckpointStore",
    "DEFAULT_MERGE_STRIDE",
    "SimulatedCrash",
    "active_session",
    "mask_dict",
    "mask_items",
    "pli_from_state",
    "pli_state",
    "rng_state_from_json",
    "rng_state_to_json",
]

#: Envelope schema version; bump to invalidate every existing checkpoint.
CHECKPOINT_FORMAT_VERSION = 1

#: SPIDER saves a merge-cursor boundary every this-many heap steps; level
#: and phase boundaries elsewhere are structural and need no stride.
DEFAULT_MERGE_STRIDE = 4096

#: Retry policy for checkpoint I/O when the session was not given one.
DEFAULT_RETRY = RetryPolicy()


class CheckpointSession:
    """One execution's checkpoint file: load, boundary saves, completion.

    ``kill_after=N`` raises :class:`SimulatedCrash` right after the N-th
    boundary write of this session completes (the differential kill
    matrix); ``None`` disables it.  ``merge_stride`` is consulted by
    SPIDER for its step-count boundaries.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        kill_after: int | None = None,
        merge_stride: int = DEFAULT_MERGE_STRIDE,
        retry: RetryPolicy | None = None,
    ):
        self.path = Path(path)
        self.kill_after = kill_after
        self.merge_stride = merge_stride
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.boundaries = 0
        self.restored = False
        self._envelope: dict[str, Any] | None = None
        self._providers: list[tuple[str, Callable[[], dict[str, Any]]]] = []

    # -- restore ------------------------------------------------------------

    def load(self) -> bool:
        """Read the checkpoint file; True when prior state was restored.

        A missing, corrupt, torn, or version-mismatched file is treated
        as *absent* — a checkpoint must never turn disk state into an
        error (the run simply starts fresh).  The read runs under the
        retry policy and trips the ``checkpoint.load`` fault point even
        when no file exists, so the injection campaign always reaches it.
        """

        def _read() -> dict[str, Any] | None:
            if FAULTS.armed:
                FAULTS.trip(CHECKPOINT_LOAD)
            try:
                with open(self.path, "r", encoding="utf-8") as handle:
                    return json.load(handle)
            except FileNotFoundError:
                return None

        try:
            envelope = self.retry.call(_read, key=f"checkpoint.load:{self.path.name}")
        except (OSError, ValueError):
            envelope = None
        if (
            not isinstance(envelope, dict)
            or envelope.get("version") != CHECKPOINT_FORMAT_VERSION
            or not isinstance(envelope.get("stages"), dict)
        ):
            return False
        self._envelope = envelope
        self.restored = True
        _trace.count("checkpoint.loads")
        _trace.event(
            "checkpoint.load",
            stage=envelope.get("stage", ""),
            boundary=envelope.get("boundary", 0),
        )
        return True

    def resume(self, stage: str) -> Any | None:
        """Deep copy of ``stage``'s saved state, or ``None``.

        Non-consuming (a JSON round-trip copy), so restoring the same
        context at two nesting levels is harmless, and reading never
        aliases mutable state into the envelope.
        """
        if self._envelope is None:
            return None
        state = self._envelope["stages"].get(stage)
        if state is None:
            return None
        return json.loads(json.dumps(state))

    # -- nested-state composition -------------------------------------------

    @contextmanager
    def context(
        self, stage: str, provider: Callable[[], dict[str, Any]]
    ) -> Iterator[None]:
        """Register ``provider`` as enclosing traversal state.

        While active, every boundary saved by inner stages embeds
        ``provider()`` under ``stage``, so the file always snapshots the
        full nesting (e.g. MUDS phase progress around a DUCC walk).
        """
        self._providers.append((stage, provider))
        try:
            yield
        finally:
            self._providers.pop()

    # -- save ---------------------------------------------------------------

    def boundary(self, stage: str, state: dict[str, Any]) -> None:
        """Durably save one completed boundary of ``stage``.

        The envelope holds the active context providers' states plus
        ``state`` as the leaf (the leaf wins on a stage-name collision,
        e.g. a context re-saving its own phase edge).  The write is
        atomic (temp + fsync + :func:`os.replace`), retried, and trips
        the ``checkpoint.save`` fault point.  With ``kill_after`` set,
        raises :class:`SimulatedCrash` once enough boundaries have been
        written — *after* the write, so the crash always leaves a
        durable, restorable file.
        """
        stages: dict[str, Any] = {}
        for context_stage, provider in self._providers:
            stages[context_stage] = provider()
        stages[stage] = state
        envelope = {
            "version": CHECKPOINT_FORMAT_VERSION,
            "stage": stage,
            "boundary": self.boundaries + 1,
            "stages": stages,
        }
        payload = json.dumps(envelope)

        def _write() -> None:
            if FAULTS.armed:
                FAULTS.trip(CHECKPOINT_SAVE)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            temporary = self.path.with_name(f"{self.path.name}.tmp-{os.getpid()}")
            with open(temporary, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temporary, self.path)

        self.retry.call(_write, key=f"checkpoint.save:{self.path.name}")
        self._envelope = envelope
        self.boundaries += 1
        _trace.count("checkpoint.saves")
        _trace.event(
            "checkpoint.save",
            stage=stage,
            boundary=self.boundaries,
            bytes=len(payload),
        )
        if self.kill_after is not None and self.boundaries >= self.kill_after:
            raise SimulatedCrash(stage, self.boundaries)

    # -- teardown -----------------------------------------------------------

    def complete(self) -> None:
        """The execution finished ok: delete the checkpoint file.

        TL/ML/ERR/interrupted executions keep their file on purpose —
        that is what a later resume continues from.
        """
        try:
            os.unlink(self.path)
        except OSError:
            pass
        self._envelope = None
        _trace.event("checkpoint.complete", boundaries=self.boundaries)

    def discard(self) -> None:
        """Forget (and delete) any prior state without tracing: the
        caller asked for a fresh run (``resume=False``)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass
        self._envelope = None
        self.restored = False

    def __repr__(self) -> str:
        return (
            f"CheckpointSession({str(self.path)!r}, restored={self.restored}, "
            f"boundaries={self.boundaries})"
        )


# -- the store --------------------------------------------------------------


class CheckpointStore:
    """Directory of checkpoint files keyed like the result cache.

    ``(fingerprint, algorithm, config)`` addresses one file — the same
    cell identity as :class:`~repro.harness.result_cache.ResultCache`, so
    a resume only ever restores state produced by an identical
    computation.  ``kill_after`` / ``merge_stride`` / ``retry`` defaults
    are inherited by every session the store opens.
    """

    def __init__(
        self,
        root: str | os.PathLike[str],
        kill_after: int | None = None,
        merge_stride: int = DEFAULT_MERGE_STRIDE,
        retry: RetryPolicy | None = None,
    ):
        self.root = Path(root)
        self.kill_after = kill_after
        self.merge_stride = merge_stride
        self.retry = retry
        self.last_session: CheckpointSession | None = None

    def path_for(
        self,
        fingerprint: str,
        algorithm: str,
        config: Mapping[str, Any] | str | None = None,
    ) -> Path:
        """On-disk location of one execution's checkpoint (exists or not)."""
        key = config_key(config)
        tail = hashlib.sha256(
            f"{fingerprint}\x00{algorithm}\x00{key}".encode()
        ).hexdigest()[:24]
        return (
            self.root
            / fingerprint[:2]
            / f"{fingerprint[2:18]}-{algorithm}-{tail}.ckpt.json"
        )

    def session(
        self,
        fingerprint: str,
        algorithm: str,
        config: Mapping[str, Any] | str | None = None,
    ) -> CheckpointSession:
        """Open (without loading) the session for one execution cell."""
        session = CheckpointSession(
            self.path_for(fingerprint, algorithm, config),
            kill_after=self.kill_after,
            merge_stride=self.merge_stride,
            retry=self.retry,
        )
        self.last_session = session
        return session

    def __repr__(self) -> str:
        return f"CheckpointStore({str(self.root)!r})"
