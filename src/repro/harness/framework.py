"""Metanome-like execution framework (§6).

The paper runs every algorithm inside the Metanome data-profiling
framework, which standardizes input handling, execution, and result
collection so that algorithm comparisons are fair.  This module is the
equivalent substrate: profilers are registered under a name, executed
against relations through one code path with wall-clock measurement, and
their results and metrics are collected uniformly.

Each execution additionally snapshots the PLI kernel counters
(:data:`repro.pli.pli.KERNEL_STATS`) around the run, so reports can show
per-algorithm substrate activity — intersections performed, probe vectors
built vs. reused — next to the phase timings (Fig. 8-style breakdowns).

Failure is part of the contract (the reason the paper needs Metanome at
all): :meth:`Framework.run` accepts a :class:`~repro.guard.Budget` and
*contains* whatever goes wrong inside the profiler.  A budgeted run that
hits its wall-clock/work limit is recorded with ``status="timeout"``, a
memory-limited one with ``status="memory"`` — both keep the partial
results the algorithm attached while unwinding — and a crash is recorded
with ``status="error"``.  Reports render these as Metanome's TL/ML/ERR
cells (:attr:`Execution.marker`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Protocol

from .. import trace as _trace
from ..checkpointing import active_session
from ..core.baseline import SequentialBaseline
from ..core.holistic_fun import HolisticFun
from ..core.muds import Muds
from ..guard import Budget, BudgetExceeded, guarded
from .checkpoint import CheckpointStore
from .signals import Interrupted
from ..metadata.results import ProfilingResult, fd_signature, ucc_signature
from ..metadata.serialize import result_from_dict, result_to_dict
from ..pli import backend as _backend
from ..pli.pli import KERNEL_STATS
from ..relation import encoded as _encoded
from ..relation.relation import Relation
from ..sampling import SamplingConfig
from .result_cache import ResultCache

__all__ = [
    "Profiler",
    "Execution",
    "Framework",
    "MetadataDisagreement",
    "STATUS_MARKERS",
    "default_framework",
    "verify_agreement",
]

#: Report markers per execution status — Metanome's table-cell notation:
#: TL = time limit (deadline or work budget), ML = memory limit,
#: ERR = crash.  ``"ok"`` renders as no marker.
STATUS_MARKERS = {
    "ok": "",
    "timeout": "TL",
    "memory": "ML",
    "error": "ERR",
    "interrupted": "INT",
}


class Profiler(Protocol):
    """Anything that can profile a relation (MUDS, Holistic FUN, ...)."""

    def profile(self, relation: Relation) -> ProfilingResult: ...


@dataclass(slots=True)
class Execution:
    """One algorithm execution with its measurements.

    ``status`` is ``"ok"`` for a completed run, ``"timeout"``/``"memory"``
    for a budgeted run stopped by its :class:`~repro.guard.Budget` (the
    ``result`` then holds the partial metadata discovered before the stop)
    and ``"error"`` for a contained crash (empty ``result``); ``error``
    carries the human-readable cause for every non-ok status.
    """

    algorithm: str
    dataset: str
    n_columns: int
    n_rows: int
    seconds: float
    result: ProfilingResult
    #: True for single-task FD algorithms (TANE) that report no INDs/UCCs.
    fd_only: bool = False
    #: PLI kernel activity during this execution (counter deltas).
    kernel: dict[str, int] = field(default_factory=dict)
    #: Outcome: ``ok`` | ``timeout`` | ``memory`` | ``error``.
    status: str = "ok"
    #: Failure cause for non-ok statuses (``None`` when ok).
    error: str | None = None
    #: True when this execution was served from a :class:`ResultCache`
    #: instead of being computed; ``seconds`` then reports the *original*
    #: compute time, not the (near-zero) lookup time.
    cached: bool = False
    #: True when this execution continued from an intra-execution
    #: checkpoint instead of starting fresh (``seconds`` then covers only
    #: the resumed portion; the discovered metadata is bit-identical to an
    #: undisturbed run's).
    resumed: bool = False

    @property
    def counts(self) -> tuple[int, int, int]:
        """(#INDs, #UCCs, #FDs) of this execution."""
        return len(self.result.inds), len(self.result.uccs), len(self.result.fds)

    @property
    def ok(self) -> bool:
        """True iff the execution completed within its budget."""
        return self.status == "ok"

    @property
    def marker(self) -> str:
        """Report marker: ``""`` (ok), ``TL``, ``ML``, or ``ERR``."""
        return STATUS_MARKERS.get(self.status, "ERR")

    # -- journal (de)serialization ----------------------------------------

    def to_record(self) -> dict[str, Any]:
        """JSON-ready form for the sweep journal (lossless round-trip).

        ``resumed`` rides along only when set, so pre-checkpoint journals
        keep their wire format byte for byte."""
        record = {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "n_columns": self.n_columns,
            "n_rows": self.n_rows,
            "seconds": self.seconds,
            "fd_only": self.fd_only,
            "kernel": dict(self.kernel),
            "status": self.status,
            "error": self.error,
            "cached": self.cached,
            "result": result_to_dict(self.result),
        }
        if self.resumed:
            record["resumed"] = True
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "Execution":
        """Rebuild an execution from its journal record."""
        return cls(
            algorithm=record["algorithm"],
            dataset=record["dataset"],
            n_columns=record["n_columns"],
            n_rows=record["n_rows"],
            seconds=record["seconds"],
            result=result_from_dict(record["result"]),
            fd_only=record.get("fd_only", False),
            kernel=dict(record.get("kernel", {})),
            status=record.get("status", "ok"),
            error=record.get("error"),
            cached=record.get("cached", False),
            resumed=record.get("resumed", False),
        )


class MetadataDisagreement(AssertionError):
    """Two executions disagree on the discovered metadata.

    The message lists the symmetric difference of their FD/UCC/IND sets
    (capped per direction) so a failing cross-validation run shows *what*
    diverged, not just that something did.  Subclasses
    :class:`AssertionError` for compatibility with callers that treated
    the agreement check as an assertion.
    """

    #: Max entries listed per direction before eliding with "... and N more".
    MAX_LISTED = 12

    def __init__(self, reference: Execution, other: Execution, fds_only: bool):
        self.reference = reference
        self.other = other
        lines = [
            f"{reference.algorithm} and {other.algorithm} disagree "
            f"on {reference.dataset}:"
        ]
        lines += self._diff_lines(
            "FDs",
            {self._fd_str(s) for s in fd_signature(reference.result.fds)},
            {self._fd_str(s) for s in fd_signature(other.result.fds)},
            reference.algorithm,
            other.algorithm,
        )
        if not fds_only:
            lines += self._diff_lines(
                "UCCs",
                {"{" + ", ".join(sorted(s)) + "}"
                 for s in ucc_signature(reference.result.uccs)},
                {"{" + ", ".join(sorted(s)) + "}"
                 for s in ucc_signature(other.result.uccs)},
                reference.algorithm,
                other.algorithm,
            )
            lines += self._diff_lines(
                "INDs",
                {str(ind) for ind in reference.result.inds},
                {str(ind) for ind in other.result.inds},
                reference.algorithm,
                other.algorithm,
            )
        super().__init__("\n".join(lines))

    @staticmethod
    def _fd_str(signature: tuple[frozenset[str], str]) -> str:
        lhs, rhs = signature
        return "{" + ", ".join(sorted(lhs)) + "} -> " + rhs

    @classmethod
    def _diff_lines(
        cls,
        kind: str,
        reference: set[str],
        other: set[str],
        reference_name: str,
        other_name: str,
    ) -> list[str]:
        lines = []
        for label, extra in (
            (reference_name, sorted(reference - other)),
            (other_name, sorted(other - reference)),
        ):
            if not extra:
                continue
            shown = "; ".join(extra[: cls.MAX_LISTED])
            if len(extra) > cls.MAX_LISTED:
                shown += f"; ... and {len(extra) - cls.MAX_LISTED} more"
            lines.append(f"  {kind} only in {label} ({len(extra)}): {shown}")
        return lines


def verify_agreement(executions: Iterable[Execution]) -> None:
    """Check that all *completed* executions agree on the metadata.

    Non-ok executions (TL/ML/ERR cells) are skipped — a partial result
    legitimately differs.  FD-only executions are compared on FDs alone.
    Raises :class:`MetadataDisagreement` on the first mismatch.
    """
    completed = [e for e in executions if e.ok]
    full = [e for e in completed if not e.fd_only]
    reference = full[0] if full else (completed[0] if completed else None)
    if reference is None:
        return
    for execution in completed:
        if execution is reference:
            continue
        fds_only = execution.fd_only or not full
        if fds_only:
            agree = fd_signature(reference.result.fds) == fd_signature(
                execution.result.fds
            )
        else:
            agree = reference.result.same_metadata(execution.result)
        if not agree:
            raise MetadataDisagreement(reference, execution, fds_only)


class Framework:
    """Algorithm registry plus a uniform, timed, failure-containing
    execution path."""

    def __init__(self) -> None:
        self._profilers: dict[str, Callable[[], Profiler]] = {}
        self._fd_only: set[str] = set()
        self.executions: list[Execution] = []

    def register(
        self, name: str, factory: Callable[[], Profiler], fd_only: bool = False
    ) -> None:
        """Register a profiler factory (a fresh instance per execution, so
        runs never share warm state).  ``fd_only`` marks single-task FD
        algorithms (TANE) that cannot be compared on INDs/UCCs."""
        if name in self._profilers:
            raise ValueError(f"algorithm {name!r} already registered")
        self._profilers[name] = factory
        if fd_only:
            self._fd_only.add(name)

    @property
    def algorithms(self) -> tuple[str, ...]:
        """Registered algorithm names."""
        return tuple(self._profilers)

    def run(
        self,
        name: str,
        relation: Relation,
        budget: Budget | None = None,
        cache: "ResultCache | None" = None,
        cache_config: Mapping[str, Any] | str | None = None,
        checkpoints: CheckpointStore | None = None,
        resume: bool = True,
    ) -> Execution:
        """Execute one registered algorithm on one relation.

        With a ``budget``, the profiler runs under the cooperative guard
        (:func:`repro.guard.guarded`): blowing the deadline / work budget
        yields ``status="timeout"``, the memory estimate ``"memory"`` —
        both keep the partial results the algorithm attached on the way
        out.  Profiler crashes (any :class:`Exception`, including injected
        faults) are contained as ``status="error"`` with an empty result;
        a raw :class:`MemoryError` is classified as ``"memory"``.  The
        framework itself never raises for an algorithm failure — that is
        the point: one exploding contender must not take the comparison
        run down (Metanome's TL/ML/ERR cells).

        With a ``cache``, the relation's content fingerprint keys a lookup
        before anything runs: a hit returns the stored execution (marked
        :attr:`Execution.cached`, keeping the original compute ``seconds``)
        and a completed run is stored back.  Budgeted runs bypass the
        cache entirely — a TL/ML cell is a property of the budget, not of
        the input, and a caller imposing limits expects the work to be
        bounded, not skipped.  ``cache_config`` must carry whatever else
        (seed, variant flags) can change this algorithm's output.

        With ``checkpoints``, the execution runs under an intra-execution
        checkpoint session keyed by (relation fingerprint, algorithm,
        ``cache_config``): the profiler snapshots its traversal state at
        level/phase boundaries, and when ``resume`` (default) finds a
        snapshot from an earlier killed or budget-stopped run, the
        execution continues from the last completed boundary with
        bit-identical final results (:attr:`Execution.resumed` is set).
        A completed (``ok``) execution deletes its checkpoint; TL/ML/ERR
        and interrupted executions keep it for the next attempt.  A
        SIGTERM/SIGINT delivered under :func:`~repro.harness.signals.graceful_shutdown`
        is recorded as a ``status="interrupted"`` execution and re-raised
        so the caller can exit cleanly.
        """
        try:
            factory = self._profilers[name]
        except KeyError:
            raise KeyError(
                f"unknown algorithm {name!r}; registered: {self.algorithms}"
            ) from None
        if cache is not None and budget is None:
            fingerprint = relation.fingerprint()
            payload = cache.get(fingerprint, name, cache_config)
            if payload is not None:
                try:
                    execution = Execution.from_record(payload)
                except (KeyError, TypeError, ValueError):
                    execution = None  # stale/corrupt entry: recompute
                if execution is not None and execution.ok:
                    execution.cached = True
                    # A served run performs no algorithm work, so it must
                    # not fabricate algorithm spans — per-phase tables
                    # would show zero-cost runs.  A cache.hit event keeps
                    # the trace honest about what happened instead.
                    tracer = _trace.ACTIVE
                    if tracer is not None:
                        tracer.event(
                            "cache.hit",
                            algorithm=name,
                            dataset=relation.name,
                            fingerprint=fingerprint[:12],
                        )
                    self.executions.append(execution)
                    return execution
        profiler = factory()
        status, error_message = "ok", None
        session = None
        if checkpoints is not None:
            session = checkpoints.session(
                relation.fingerprint(), name, cache_config
            )
            if resume:
                session.load()
            else:
                session.discard()
        kernel_before = KERNEL_STATS.snapshot()
        tracer = _trace.ACTIVE
        run_span = (
            tracer.span(
                "run",
                algorithm=name,
                dataset=relation.name,
                columns=relation.n_columns,
                rows=relation.n_rows,
                pli_backend=_backend.ACTIVE.name,
                storage=_encoded.ACTIVE,
            )
            if tracer is not None
            else _trace.NULL_SPAN
        )
        interrupt: Interrupted | None = None
        with run_span:
            started = time.perf_counter()
            try:
                with guarded(budget), active_session(session):
                    result = profiler.profile(relation)
            except BudgetExceeded as error:
                status = error.reason
                error_message = str(error)
                partial = error.partial_result
                result = (
                    partial
                    if isinstance(partial, ProfilingResult)
                    else _empty_result(relation)
                )
            except Interrupted as error:
                # Graceful shutdown: record the interruption (the active
                # checkpoint survives for the next attempt) and re-raise —
                # unlike a budget stop, the *caller* asked to wind down.
                status = "interrupted"
                error_message = str(error)
                result = _empty_result(relation)
                interrupt = error
            except MemoryError:
                status = "memory"
                error_message = "MemoryError"
                result = _empty_result(relation)
            except Exception as error:  # crash containment, by design
                status = "error"
                error_message = f"{type(error).__name__}: {error}"
                result = _empty_result(relation)
            seconds = time.perf_counter() - started
            run_span.set(status=status)
        execution = Execution(
            algorithm=name,
            dataset=relation.name,
            n_columns=relation.n_columns,
            n_rows=relation.n_rows,
            seconds=seconds,
            result=result,
            fd_only=name in self._fd_only,
            kernel=KERNEL_STATS.delta(kernel_before),
            status=status,
            error=error_message,
            resumed=session.restored if session is not None else False,
        )
        if session is not None and execution.ok:
            # Only a completed run retires its checkpoint; TL/ML/ERR and
            # interrupted runs keep the file so the next attempt resumes.
            session.complete()
        if cache is not None and budget is None and execution.ok:
            try:
                cache.put(
                    relation.fingerprint(),
                    name,
                    execution.to_record(),
                    cache_config,
                )
            except OSError as error:
                # A broken result cache must not fail a completed run.
                _trace.event(
                    "cache.put_failed",
                    algorithm=name,
                    dataset=relation.name,
                    error=f"{type(error).__name__}: {error}",
                )
        self.executions.append(execution)
        if interrupt is not None:
            raise interrupt
        return execution

    def run_all(
        self,
        relation: Relation,
        names: tuple[str, ...] | None = None,
        check_agreement: bool = True,
        budget: Budget | Mapping[str, Budget] | None = None,
    ) -> list[Execution]:
        """Execute several (default: all) registered algorithms on one
        relation; with ``check_agreement`` (default) verify the completed
        executions agree on the discovered metadata (FDs only for
        ``fd_only`` algorithms).  ``budget`` is one shared
        :class:`~repro.guard.Budget` or a per-algorithm mapping (missing
        names run unbudgeted)."""
        executions = [
            self.run(name, relation, budget=resolve_budget(budget, name))
            for name in (names or self.algorithms)
        ]
        if check_agreement:
            verify_agreement(executions)
        return executions


def resolve_budget(
    budget: Budget | Mapping[str, Budget] | None, algorithm: str
) -> Budget | None:
    """Resolve a shared-or-per-algorithm budget spec for one algorithm."""
    if budget is None or isinstance(budget, Budget):
        return budget
    return budget.get(algorithm)


def _empty_result(relation: Relation) -> ProfilingResult:
    """The empty result recorded for executions that produced nothing."""
    return ProfilingResult.from_masks(
        relation_name=relation.name, column_names=relation.column_names
    )


def default_framework(
    seed: int = 0,
    faithful_muds: bool = True,
    sampling: "SamplingConfig | bool | None" = None,
    pli_backend: str | None = None,
    storage: str | None = None,
) -> Framework:
    """Framework with the paper's four contenders registered.

    ``faithful_muds`` selects the as-published MUDS configuration
    (``verify_completeness=False``) used for benchmark comparisons; pass
    ``False`` to benchmark the exactness-certifying default instead.
    ``sampling`` configures every contender's refutation engine uniformly
    (``None``/``True`` default on, ``False`` off).  ``pli_backend`` arms a
    PLI kernel backend process-wide (``"python"``/``"numpy"``; ``None``
    keeps the currently armed one) — the results are bit-identical either
    way, only the kernel's speed changes.  ``storage`` likewise arms a
    column-storage mode process-wide
    (``"objects"``/``"encoded"``/``"mmap"``; ``None`` keeps the armed
    one): metadata and counters are identical across modes, only memory
    residency and speed change.
    """
    from ..algorithms.tane import TaneResult, tane
    from ..pli.store import PliStore

    if pli_backend is not None:
        _backend.set_backend(pli_backend)
    if storage is not None:
        _encoded.set_storage(storage)

    class _TaneProfiler:
        """TANE wrapped as a (FD-only) profiler for Table 3 comparisons."""

        def __init__(self) -> None:
            self.store = PliStore(sampling=sampling)

        def profile(self, relation: Relation) -> ProfilingResult:
            index = self.store.index_for(relation)
            try:
                result = tane(index)
            except BudgetExceeded as error:
                if error.partial_result is None and isinstance(
                    error.partial, TaneResult
                ):
                    error.partial_result = self._to_result(
                        relation, error.partial
                    )
                raise
            return self._to_result(relation, result)

        @staticmethod
        def _to_result(relation: Relation, result: "TaneResult") -> ProfilingResult:
            return ProfilingResult.from_masks(
                relation_name=relation.name,
                column_names=relation.column_names,
                ucc_masks=result.minimal_keys,
                fd_pairs=result.fds,
                counters={
                    "fd_checks": result.fd_checks,
                    "pli_intersections": result.intersections,
                },
            )

    framework = Framework()
    framework.register(
        "baseline", lambda: SequentialBaseline(seed=seed, sampling=sampling)
    )
    framework.register("hfun", lambda: HolisticFun(sampling=sampling))
    framework.register(
        "muds",
        lambda: Muds(
            seed=seed,
            verify_completeness=not faithful_muds,
            sampling=sampling,
        ),
    )
    framework.register("tane", lambda: _TaneProfiler(), fd_only=True)
    return framework
