"""Metanome-like execution framework (§6).

The paper runs every algorithm inside the Metanome data-profiling
framework, which standardizes input handling, execution, and result
collection so that algorithm comparisons are fair.  This module is the
equivalent substrate: profilers are registered under a name, executed
against relations through one code path with wall-clock measurement, and
their results and metrics are collected uniformly.

Each execution additionally snapshots the PLI kernel counters
(:data:`repro.pli.pli.KERNEL_STATS`) around the run, so reports can show
per-algorithm substrate activity — intersections performed, probe vectors
built vs. reused — next to the phase timings (Fig. 8-style breakdowns).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

from ..core.baseline import SequentialBaseline
from ..core.holistic_fun import HolisticFun
from ..core.muds import Muds
from ..metadata.results import ProfilingResult
from ..pli.pli import KERNEL_STATS
from ..relation.relation import Relation

__all__ = ["Profiler", "Execution", "Framework", "default_framework"]


class Profiler(Protocol):
    """Anything that can profile a relation (MUDS, Holistic FUN, ...)."""

    def profile(self, relation: Relation) -> ProfilingResult: ...


@dataclass(slots=True)
class Execution:
    """One algorithm execution with its measurements."""

    algorithm: str
    dataset: str
    n_columns: int
    n_rows: int
    seconds: float
    result: ProfilingResult
    #: True for single-task FD algorithms (TANE) that report no INDs/UCCs.
    fd_only: bool = False
    #: PLI kernel activity during this execution (counter deltas).
    kernel: dict[str, int] = field(default_factory=dict)

    @property
    def counts(self) -> tuple[int, int, int]:
        """(#INDs, #UCCs, #FDs) of this execution."""
        return len(self.result.inds), len(self.result.uccs), len(self.result.fds)


class Framework:
    """Algorithm registry plus a uniform, timed execution path."""

    def __init__(self) -> None:
        self._profilers: dict[str, Callable[[], Profiler]] = {}
        self._fd_only: set[str] = set()
        self.executions: list[Execution] = []

    def register(
        self, name: str, factory: Callable[[], Profiler], fd_only: bool = False
    ) -> None:
        """Register a profiler factory (a fresh instance per execution, so
        runs never share warm state).  ``fd_only`` marks single-task FD
        algorithms (TANE) that cannot be compared on INDs/UCCs."""
        if name in self._profilers:
            raise ValueError(f"algorithm {name!r} already registered")
        self._profilers[name] = factory
        if fd_only:
            self._fd_only.add(name)

    @property
    def algorithms(self) -> tuple[str, ...]:
        """Registered algorithm names."""
        return tuple(self._profilers)

    def run(self, name: str, relation: Relation) -> Execution:
        """Execute one registered algorithm on one relation."""
        try:
            factory = self._profilers[name]
        except KeyError:
            raise KeyError(
                f"unknown algorithm {name!r}; registered: {self.algorithms}"
            ) from None
        profiler = factory()
        kernel_before = KERNEL_STATS.snapshot()
        started = time.perf_counter()
        result = profiler.profile(relation)
        seconds = time.perf_counter() - started
        kernel_after = KERNEL_STATS.snapshot()
        execution = Execution(
            algorithm=name,
            dataset=relation.name,
            n_columns=relation.n_columns,
            n_rows=relation.n_rows,
            seconds=seconds,
            result=result,
            fd_only=name in self._fd_only,
            kernel={
                counter: kernel_after[counter] - kernel_before[counter]
                for counter in kernel_after
            },
        )
        self.executions.append(execution)
        return execution

    def run_all(
        self,
        relation: Relation,
        names: tuple[str, ...] | None = None,
        check_agreement: bool = True,
    ) -> list[Execution]:
        """Execute several (default: all) registered algorithms on one
        relation; with ``check_agreement`` (default) verify they agree on
        the discovered metadata (FDs only for ``fd_only`` algorithms)."""
        from ..metadata.results import fd_signature

        executions = [self.run(name, relation) for name in (names or self.algorithms)]
        if not check_agreement:
            return executions
        full = [e for e in executions if e.algorithm not in self._fd_only]
        reference = full[0] if full else executions[0]
        for execution in executions:
            if execution is reference:
                continue
            if execution.algorithm in self._fd_only or not full:
                agree = fd_signature(reference.result.fds) == fd_signature(
                    execution.result.fds
                )
            else:
                agree = reference.result.same_metadata(execution.result)
            if not agree:
                raise AssertionError(
                    f"{reference.algorithm} and {execution.algorithm} "
                    f"disagree on {relation.name}"
                )
        return executions


def default_framework(seed: int = 0, faithful_muds: bool = True) -> Framework:
    """Framework with the paper's four contenders registered.

    ``faithful_muds`` selects the as-published MUDS configuration
    (``verify_completeness=False``) used for benchmark comparisons; pass
    ``False`` to benchmark the exactness-certifying default instead.
    """
    from ..algorithms.tane import tane
    from ..pli.store import PliStore

    class _TaneProfiler:
        """TANE wrapped as a (FD-only) profiler for Table 3 comparisons."""

        def __init__(self) -> None:
            self.store = PliStore()

        def profile(self, relation: Relation) -> ProfilingResult:
            index = self.store.index_for(relation)
            result = tane(index)
            return ProfilingResult.from_masks(
                relation_name=relation.name,
                column_names=relation.column_names,
                ucc_masks=result.minimal_keys,
                fd_pairs=result.fds,
                counters={
                    "fd_checks": result.fd_checks,
                    "pli_intersections": result.intersections,
                },
            )

    framework = Framework()
    framework.register("baseline", lambda: SequentialBaseline(seed=seed))
    framework.register("hfun", lambda: HolisticFun())
    framework.register(
        "muds", lambda: Muds(seed=seed, verify_completeness=not faithful_muds)
    )
    framework.register("tane", lambda: _TaneProfiler(), fd_only=True)
    return framework
