"""Content-addressed profiling-result cache.

The evaluation grid (Fig. 6/7/8, Table 3) re-profiles the same relations
over and over — across sweep re-runs, across benchmark drivers, and on
every CI bench-smoke execution.  Profiling is a pure function of
(relation content, algorithm, configuration), so its output can be cached
under a content address: :meth:`~repro.relation.relation.Relation.fingerprint`
(streamed hash of schema + rows) keys an on-disk store of serialized
execution records, and any sweep that meets an already-profiled
``(fingerprint, algorithm, config)`` cell skips the computation entirely.

The cache is a plain directory of JSON files (default:
``benchmarks/results/cache/``), safe to delete at any time and safe to
share between concurrent processes: entries are written atomically
(temp file + :func:`os.replace`) and a corrupt or torn entry is treated
as a miss, never an error.  Only *completed* executions are ever stored —
TL/ML/ERR cells depend on the budget that produced them, not just on the
input, and must be recomputed.

Robustness: reads and writes run under a bounded
:class:`~repro.harness.retry.RetryPolicy` (transient I/O errors are
retried with backoff, so a busy filesystem does not turn into a miss or a
lost store), and an entry that holds unparseable JSON is *quarantined* —
moved into a ``quarantine/`` sibling directory for post-mortem inspection
— exactly once, instead of being re-read and re-misclassified on every
sweep over the same cell.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path, PurePath
from typing import Any, Mapping

from .. import trace as _trace
from ..faults import FAULTS, RESULT_CACHE_GET, RESULT_CACHE_PUT
from .retry import RetryPolicy

__all__ = ["ResultCache", "DEFAULT_CACHE_DIR", "config_key"]

#: Default on-disk location (relative to the working directory).
DEFAULT_CACHE_DIR = os.path.join("benchmarks", "results", "cache")

#: Envelope schema version; bump to invalidate every existing entry.
CACHE_FORMAT_VERSION = 1


def _canonicalize(value: Any, path: str) -> Any:
    """Recursively reduce a config value to a canonical JSON-ready form.

    Equal configurations must produce equal keys regardless of how they
    were spelled: mappings sort by key, sets sort their (canonicalized)
    elements, tuples and lists are the same sequence, and paths use POSIX
    separators.  Anything without a well-defined canonical form — an
    arbitrary object that ``str()`` would stringify differently across
    runs, or a set whose canonical elements cannot be ordered — is
    rejected loudly: a silently unstable key splits the cache, which is
    the bug this function exists to prevent.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise TypeError(
                f"config value at {path!r} is non-finite ({value!r}); "
                "non-finite floats have no canonical JSON form"
            )
        return value
    if isinstance(value, PurePath):
        return value.as_posix()
    if isinstance(value, Mapping):
        items = []
        for key in value:
            if not isinstance(key, str):
                raise TypeError(
                    f"config mapping key at {path!r} must be a string, "
                    f"got {type(key).__name__}: {key!r}"
                )
            items.append((key, _canonicalize(value[key], f"{path}.{key}")))
        return dict(sorted(items))
    if isinstance(value, (set, frozenset)):
        elements = [
            _canonicalize(element, f"{path}{{}}") for element in value
        ]
        try:
            elements.sort()
        except TypeError as error:
            raise TypeError(
                f"config set at {path!r} has unorderable elements "
                f"(mixed types have no canonical order): {error}"
            ) from error
        return elements
    if isinstance(value, (list, tuple)):
        return [
            _canonicalize(element, f"{path}[{index}]")
            for index, element in enumerate(value)
        ]
    raise TypeError(
        f"config value at {path!r} has no canonical form: "
        f"{type(value).__name__}: {value!r}"
    )


def config_key(config: Mapping[str, Any] | str | None) -> str:
    """Canonical string form of an execution configuration.

    A configuration is whatever, besides the input relation and algorithm
    name, can change the discovered metadata: seeds, algorithm variants,
    preprocessing flags.  Mappings canonicalize recursively — sorted keys,
    sorted sets, POSIX path strings — to compact JSON, so spelling
    differences (key order, ``set`` iteration order, ``Path`` flavor,
    ``tuple`` vs ``list``) never split the cache.  Values with no
    well-defined canonical form raise :class:`TypeError` instead of being
    stringified unstably.
    """
    if config is None:
        return ""
    if isinstance(config, str):
        return config
    return json.dumps(
        _canonicalize(config, "$"), sort_keys=True, separators=(",", ":")
    )


class ResultCache:
    """Directory-backed ``(fingerprint, algorithm, config) -> payload`` map.

    Payloads are arbitrary JSON-ready dicts; the harness stores serialized
    :class:`~repro.harness.framework.Execution` records and the CLI stores
    serialized :class:`~repro.metadata.results.ProfilingResult` documents.
    ``hits`` / ``misses`` / ``puts`` count this instance's traffic.
    """

    def __init__(
        self,
        root: str | os.PathLike[str] = DEFAULT_CACHE_DIR,
        retry: RetryPolicy | None = None,
    ):
        self.root = Path(root)
        self.retry = retry or RetryPolicy()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0

    # -- addressing --------------------------------------------------------

    def entry_path(
        self,
        fingerprint: str,
        algorithm: str,
        config: Mapping[str, Any] | str | None = None,
    ) -> Path:
        """On-disk location of one cache cell (exists or not)."""
        key = config_key(config)
        tail = hashlib.sha256(
            f"{fingerprint}\x00{algorithm}\x00{key}".encode()
        ).hexdigest()[:24]
        # Two-level fan-out keeps directory listings usable on big caches.
        return self.root / fingerprint[:2] / f"{fingerprint[2:18]}-{tail}.json"

    # -- traffic -----------------------------------------------------------

    def get(
        self,
        fingerprint: str,
        algorithm: str,
        config: Mapping[str, Any] | str | None = None,
    ) -> dict[str, Any] | None:
        """The cached payload for one cell, or ``None`` on a miss.

        A corrupt entry, a torn write, or an envelope whose address fields
        do not match (hash-prefix collision) all count as misses — the
        cache must never turn disk state into an exception.  Transient
        read errors are retried; an entry with unparseable JSON is moved
        to the ``quarantine/`` sibling (exactly once — the next lookup of
        the same cell is a plain missing-file miss).
        """
        path = self.entry_path(fingerprint, algorithm, config)

        def _read() -> dict[str, Any]:
            if FAULTS.armed:
                FAULTS.trip(RESULT_CACHE_GET)
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)

        try:
            envelope = self.retry.call(_read, key=str(path))
        except ValueError:
            # Unparseable JSON: disk corruption or a torn write from a
            # crashed writer.  Quarantine the evidence so the cell heals.
            self._quarantine(path)
            self.misses += 1
            return None
        except Exception:
            # Missing file, exhausted transient I/O retries, injected
            # faults: all misses, never an exception (module contract).
            self.misses += 1
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("format_version") != CACHE_FORMAT_VERSION
            or envelope.get("fingerprint") != fingerprint
            or envelope.get("algorithm") != algorithm
            or envelope.get("config") != config_key(config)
            or not isinstance(envelope.get("payload"), dict)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return envelope["payload"]

    def put(
        self,
        fingerprint: str,
        algorithm: str,
        payload: Mapping[str, Any],
        config: Mapping[str, Any] | str | None = None,
        parent_fingerprint: str | None = None,
    ) -> None:
        """Atomically store one cell (last concurrent writer wins).

        ``parent_fingerprint`` records provenance for incrementally
        maintained results: the fingerprint of the relation *before* the
        append batch whose maintenance produced this payload.  It is
        annotation only — lookups address cells by their own fingerprint,
        so a missing or corrupt parent entry can degrade ``cache ls``
        chain rendering but never a :meth:`get`.

        Transient write errors are retried with backoff; a persistent
        failure raises (callers that must not fail on a broken cache —
        the framework, the CLI — contain it and trace ``cache.put_failed``).
        """
        path = self.entry_path(fingerprint, algorithm, config)
        envelope = {
            "format_version": CACHE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "algorithm": algorithm,
            "config": config_key(config),
            "payload": dict(payload),
        }
        if parent_fingerprint is not None:
            envelope["parent_fingerprint"] = parent_fingerprint
        temporary = path.with_name(f"{path.name}.tmp-{os.getpid()}")

        def _write() -> None:
            if FAULTS.armed:
                FAULTS.trip(RESULT_CACHE_PUT)
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(temporary, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temporary, path)

        self.retry.call(_write, key=str(path))
        self.puts += 1

    # -- enumeration ---------------------------------------------------------

    def entries(self) -> "list[dict[str, Any]]":
        """Every readable, well-formed envelope in the cache (sorted by
        fingerprint, then algorithm, then config key).

        For inspection tooling (``repro cache ls``): unparseable or
        mis-shaped files are silently skipped — enumeration must degrade
        on a damaged cache directory exactly like :meth:`get` does, never
        raise.  The ``quarantine/`` sibling is never descended into.
        """
        found: list[dict[str, Any]] = []
        if not self.root.is_dir():
            return found
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or shard.name == "quarantine":
                continue
            for path in sorted(shard.glob("*.json")):
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        envelope = json.load(handle)
                except (OSError, ValueError):
                    continue
                if (
                    not isinstance(envelope, dict)
                    or envelope.get("format_version") != CACHE_FORMAT_VERSION
                    or not isinstance(envelope.get("fingerprint"), str)
                    or not isinstance(envelope.get("algorithm"), str)
                    or not isinstance(envelope.get("payload"), dict)
                ):
                    continue
                found.append(envelope)
        found.sort(
            key=lambda e: (e["fingerprint"], e["algorithm"], e.get("config", ""))
        )
        return found

    # -- corruption quarantine ---------------------------------------------

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry into ``root/quarantine/`` (collision-safe).

        Failing to move (e.g. the entry vanished between read and move, or
        the filesystem rejects the rename) still counts the corruption but
        leaves the file alone — quarantining is best-effort forensics, not
        a correctness requirement.
        """
        self.corrupt += 1
        _trace.count("cache.corrupt")
        destination_dir = self.root / "quarantine"
        try:
            destination_dir.mkdir(parents=True, exist_ok=True)
            destination = destination_dir / path.name
            suffix = 0
            while destination.exists():
                suffix += 1
                destination = destination_dir / f"{path.name}.{suffix}"
            os.replace(path, destination)
        except OSError:
            destination = None
        _trace.event(
            "cache.corrupt",
            entry=path.name,
            quarantined=destination is not None,
        )

    # -- bookkeeping -------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Traffic counters of this instance."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "corrupt": self.corrupt,
        }

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, puts={self.puts})"
        )
