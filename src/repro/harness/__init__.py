"""Metanome-like execution framework, experiment runner, and reporting."""

# Imported first so ``repro.harness.checkpoint`` always names the
# submodule: the guard's cooperative tick *function* of the same name is
# deliberately not re-exported here (use ``repro.guard.checkpoint`` or
# ``repro.harness.budget.checkpoint``).
from . import checkpoint  # noqa: F401  (binds the submodule name)
from .budget import Budget, BudgetExceeded, guarded
from .checkpoint import CheckpointSession, CheckpointStore, SimulatedCrash
from .faults import (
    FAULTS,
    FaultInjected,
    chaos_suite_enabled,
    fault_suite_enabled,
)
from .framework import (
    STATUS_MARKERS,
    Execution,
    Framework,
    MetadataDisagreement,
    Profiler,
    default_framework,
    verify_agreement,
)
from .parallel import FrameworkSpec, WorkloadSpec, default_jobs
from .profile_report import render_profile_report, render_trace_table
from .reporting import ascii_table, markdown_table, series_block
from .result_cache import DEFAULT_CACHE_DIR, ResultCache
from .retry import RetryPolicy
from .runner import ExperimentRunner, SweepJournal, SweepPoint, sweep_table
from .signals import EXIT_INTERRUPTED, Interrupted, graceful_shutdown
from .trace import Tracer, trace_summary
from .watchdog import Watchdog

__all__ = [
    "Budget",
    "BudgetExceeded",
    "CheckpointSession",
    "CheckpointStore",
    "DEFAULT_CACHE_DIR",
    "EXIT_INTERRUPTED",
    "Execution",
    "ExperimentRunner",
    "FAULTS",
    "FaultInjected",
    "Framework",
    "FrameworkSpec",
    "Interrupted",
    "MetadataDisagreement",
    "Profiler",
    "ResultCache",
    "RetryPolicy",
    "STATUS_MARKERS",
    "SimulatedCrash",
    "SweepJournal",
    "SweepPoint",
    "Tracer",
    "Watchdog",
    "WorkloadSpec",
    "ascii_table",
    "chaos_suite_enabled",
    "default_framework",
    "default_jobs",
    "fault_suite_enabled",
    "graceful_shutdown",
    "guarded",
    "markdown_table",
    "render_profile_report",
    "render_trace_table",
    "series_block",
    "sweep_table",
    "trace_summary",
    "verify_agreement",
]
