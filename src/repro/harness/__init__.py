"""Metanome-like execution framework, experiment runner, and reporting."""

from .framework import Execution, Framework, Profiler, default_framework
from .profile_report import render_profile_report
from .reporting import ascii_table, markdown_table, series_block
from .runner import ExperimentRunner, SweepPoint

__all__ = [
    "Execution",
    "ExperimentRunner",
    "Framework",
    "Profiler",
    "SweepPoint",
    "ascii_table",
    "default_framework",
    "markdown_table",
    "render_profile_report",
    "series_block",
]
