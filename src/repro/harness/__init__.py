"""Metanome-like execution framework, experiment runner, and reporting."""

from .budget import Budget, BudgetExceeded, checkpoint, guarded
from .faults import FAULTS, FaultInjected, fault_suite_enabled
from .framework import (
    STATUS_MARKERS,
    Execution,
    Framework,
    MetadataDisagreement,
    Profiler,
    default_framework,
    verify_agreement,
)
from .profile_report import render_profile_report
from .reporting import ascii_table, markdown_table, series_block
from .runner import ExperimentRunner, SweepJournal, SweepPoint, sweep_table

__all__ = [
    "Budget",
    "BudgetExceeded",
    "Execution",
    "ExperimentRunner",
    "FAULTS",
    "FaultInjected",
    "Framework",
    "MetadataDisagreement",
    "Profiler",
    "STATUS_MARKERS",
    "SweepJournal",
    "SweepPoint",
    "ascii_table",
    "checkpoint",
    "default_framework",
    "fault_suite_enabled",
    "guarded",
    "markdown_table",
    "render_profile_report",
    "series_block",
    "sweep_table",
    "verify_agreement",
]
