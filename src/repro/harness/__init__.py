"""Metanome-like execution framework, experiment runner, and reporting."""

from .budget import Budget, BudgetExceeded, checkpoint, guarded
from .faults import FAULTS, FaultInjected, fault_suite_enabled
from .framework import (
    STATUS_MARKERS,
    Execution,
    Framework,
    MetadataDisagreement,
    Profiler,
    default_framework,
    verify_agreement,
)
from .parallel import FrameworkSpec, WorkloadSpec, default_jobs
from .profile_report import render_profile_report, render_trace_table
from .reporting import ascii_table, markdown_table, series_block
from .result_cache import DEFAULT_CACHE_DIR, ResultCache
from .runner import ExperimentRunner, SweepJournal, SweepPoint, sweep_table
from .trace import Tracer, trace_summary

__all__ = [
    "Budget",
    "BudgetExceeded",
    "DEFAULT_CACHE_DIR",
    "Execution",
    "ExperimentRunner",
    "FAULTS",
    "FaultInjected",
    "Framework",
    "FrameworkSpec",
    "MetadataDisagreement",
    "Profiler",
    "ResultCache",
    "STATUS_MARKERS",
    "SweepJournal",
    "SweepPoint",
    "Tracer",
    "WorkloadSpec",
    "ascii_table",
    "checkpoint",
    "default_framework",
    "default_jobs",
    "fault_suite_enabled",
    "guarded",
    "markdown_table",
    "render_profile_report",
    "render_trace_table",
    "series_block",
    "sweep_table",
    "trace_summary",
    "verify_agreement",
]
