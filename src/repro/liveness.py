"""Worker liveness heartbeats for the hung-worker watchdog.

Worker-death containment (PR 3) catches a worker that *dies* — the pool
raises :class:`~concurrent.futures.process.BrokenProcessPool` and the
dispatch loop reroutes the in-flight points.  It cannot catch a worker
that *hangs*: a lattice loop stuck on adversarial input, a blocked I/O
call, a deadlocked C extension.  The future simply never completes and
the sweep stalls forever.

This module is the worker side of the fix.  A :class:`Heartbeat` writes a
tiny file and refreshes its mtime from the same cooperative
:func:`repro.guard.checkpoint` hook that the budget layer already uses —
every lattice loop iteration is a potential beat, so a worker making *any*
profiling progress keeps its file fresh.  The parent-side
:class:`~repro.harness.watchdog.Watchdog` stats these files and declares a
worker hung when its file goes stale past a grace period.

Like :mod:`repro.guard` and :mod:`repro.faults` this module is
import-order neutral (stdlib only) and process-global: workers arm one
:data:`ACTIVE` heartbeat for their lifetime.  Beats are throttled by a
tick stride so the hot path costs two integer operations, and a beat
*never* raises — a full disk or a vanished directory must not turn a
healthy worker into a failed one.
"""

from __future__ import annotations

import os
import time

__all__ = ["Heartbeat", "ACTIVE", "arm", "disarm"]

#: Monotonic-clock reads happen only every this-many :meth:`Heartbeat.beat`
#: calls; lattice loops checkpoint millions of times per second, while
#: heartbeat files only need sub-second freshness.
TICK_STRIDE = 64


class Heartbeat:
    """Periodically refresh a liveness file at ``path``.

    ``interval`` is the minimum wall-clock spacing between file touches;
    the watchdog's grace period should be several intervals so scheduling
    jitter never looks like a hang.
    """

    __slots__ = ("path", "interval", "label", "_clock", "_ticks", "_last")

    def __init__(
        self,
        path: str | os.PathLike[str],
        interval: float = 1.0,
        label: str = "",
        clock=time.monotonic,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.path = os.fspath(path)
        self.interval = interval
        self.label = label
        self._clock = clock
        self._ticks = 0
        self._last = 0.0

    def touch(self) -> None:
        """Unconditionally refresh the liveness file.  Never raises."""
        try:
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(f"{os.getpid()} {self.label}\n")
        except OSError:
            # A beat must never kill a healthy worker; if the heartbeat
            # directory is gone the watchdog side has already moved on.
            pass
        self._last = self._clock()

    def beat(self) -> None:
        """Throttled refresh; cheap enough for inner lattice loops."""
        self._ticks += 1
        if self._ticks < TICK_STRIDE:
            return
        self._ticks = 0
        if self._clock() - self._last >= self.interval:
            self.touch()

    def clear(self) -> None:
        """Remove the liveness file (worker shutdown).  Never raises."""
        try:
            os.unlink(self.path)
        except OSError:
            pass


#: The process's armed heartbeat (``None`` in non-worker processes).
#: Read by :func:`repro.guard.checkpoint` on every cooperative tick.
ACTIVE: Heartbeat | None = None


def arm(
    path: str | os.PathLike[str], interval: float = 1.0, label: str = ""
) -> Heartbeat:
    """Install (and immediately touch) the process-wide heartbeat."""
    global ACTIVE
    ACTIVE = Heartbeat(path, interval=interval, label=label)
    ACTIVE.touch()
    return ACTIVE


def disarm() -> None:
    """Remove the process-wide heartbeat and its liveness file."""
    global ACTIVE
    if ACTIVE is not None:
        ACTIVE.clear()
    ACTIVE = None
