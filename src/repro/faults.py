"""Deterministic fault-injection registry.

Real profiling runs fail: inputs truncate mid-read, caches hit memory
walls, algorithms crash on adversarial data.  The harness has to survive
all of that (Metanome records a failed cell and moves on), which means the
failure paths need tests — and failure paths are exactly the code that
never runs under healthy fixtures.  This module provides the injection
points: named *fault points* compiled into the substrate (CSV row reads,
PLI-cache insertions, profiler checkpoint steps) that are inert until a
test arms them.

Arming is deterministic: :meth:`FaultRegistry.arm` fires on the *N*-th hit
of a point (exactly once), :meth:`FaultRegistry.arm_seeded` draws per-hit
from a seeded :class:`random.Random` so probabilistic campaigns replay
bit-identically.  The public face for harness users is
:mod:`repro.harness.faults`; this module is import-order neutral (stdlib
only) so the lowest substrate layers can call :meth:`FaultRegistry.trip`
without creating an import cycle.

The fast path costs one attribute read: sites guard their trip call with
``if FAULTS.armed:`` and the registry keeps that flag in sync, so
production runs never pay for the machinery.
"""

from __future__ import annotations

import random

__all__ = [
    "CSV_READ",
    "CACHE_PUT",
    "PROFILER_STEP",
    "SAMPLING_HARVEST",
    "CHECKPOINT_SAVE",
    "CHECKPOINT_LOAD",
    "RESULT_CACHE_GET",
    "RESULT_CACHE_PUT",
    "STORAGE_SPILL",
    "SCHEMA_LOAD",
    "INCREMENTAL_APPEND",
    "FAULT_POINTS",
    "FaultInjected",
    "FaultRegistry",
    "FAULTS",
]

#: Fault point hit once per CSV data row decoded by ``read_csv``.
CSV_READ = "csv.read"
#: Fault point hit once per :meth:`repro.pli.cache.PliCache.put`.
CACHE_PUT = "cache.put"
#: Fault point hit at every cooperative :func:`repro.guard.checkpoint`
#: (the lattice loops of all profiling algorithms).
PROFILER_STEP = "profiler.step"
#: Fault point hit once per row selected by the sampling engine's
#: violation harvester (:func:`repro.sampling.harvester.focused_sample`).
SAMPLING_HARVEST = "sampling.harvest"
#: Fault point hit once per checkpoint-file write attempt
#: (:meth:`repro.harness.checkpoint.CheckpointSession.boundary`).
CHECKPOINT_SAVE = "checkpoint.save"
#: Fault point hit once per checkpoint-file read attempt
#: (:meth:`repro.harness.checkpoint.CheckpointSession.load`).
CHECKPOINT_LOAD = "checkpoint.load"
#: Fault point hit once per result-cache read attempt
#: (:meth:`repro.harness.result_cache.ResultCache.get`).
RESULT_CACHE_GET = "result_cache.get"
#: Fault point hit once per result-cache write attempt
#: (:meth:`repro.harness.result_cache.ResultCache.put`).
RESULT_CACHE_PUT = "result_cache.put"
#: Fault point hit once per spill-file chunk write in ``mmap`` storage
#: mode (:meth:`repro.relation.encoded.ColumnEncoder._flush`).
STORAGE_SPILL = "storage.spill"
#: Fault point hit once per table loaded by a schema sweep
#: (:meth:`repro.schema.job.SchemaJob.run`'s load phase).
SCHEMA_LOAD = "schema.load"
#: Fault point hit once per append batch folded into a shared index
#: (:meth:`repro.pli.store.PliStore.append_rows`), *before* any state is
#: mutated — a trip leaves the relation and its PLIs untouched.
INCREMENTAL_APPEND = "incremental.append"

#: Every fault point compiled into the substrate.
FAULT_POINTS = (
    CSV_READ,
    CACHE_PUT,
    PROFILER_STEP,
    SAMPLING_HARVEST,
    CHECKPOINT_SAVE,
    CHECKPOINT_LOAD,
    RESULT_CACHE_GET,
    RESULT_CACHE_PUT,
    STORAGE_SPILL,
    SCHEMA_LOAD,
    INCREMENTAL_APPEND,
)


class FaultInjected(RuntimeError):
    """Raised when an armed fault point fires."""

    def __init__(self, point: str, hit: int):
        super().__init__(f"injected fault at {point!r} (hit #{hit})")
        self.point = point
        self.hit = hit


class _ArmedFault:
    """One armed fault point: a hit counter plus a firing rule."""

    __slots__ = ("point", "at", "rng", "probability", "hits", "fired")

    def __init__(
        self,
        point: str,
        at: int | None,
        probability: float | None,
        seed: int,
    ):
        self.point = point
        self.at = at
        self.probability = probability
        self.rng = random.Random(seed)
        self.hits = 0
        self.fired = 0

    def hit(self) -> None:
        self.hits += 1
        if self.at is not None:
            if self.hits == self.at:
                self.fired += 1
                raise FaultInjected(self.point, self.hits)
            return
        assert self.probability is not None
        if self.rng.random() < self.probability:
            self.fired += 1
            raise FaultInjected(self.point, self.hits)


class FaultRegistry:
    """Registry of armed fault points.

    ``armed`` is a plain attribute (not a property) kept in sync by
    :meth:`arm`/:meth:`disarm` so instrumented hot paths can branch on it
    with a single attribute read.
    """

    def __init__(self) -> None:
        self._armed: dict[str, _ArmedFault] = {}
        self.armed = False

    # -- arming -----------------------------------------------------------

    def arm(self, point: str, at: int = 1) -> None:
        """Arm ``point`` to fire exactly once, on its ``at``-th hit."""
        self._validate(point)
        if at < 1:
            raise ValueError(f"at must be >= 1, got {at}")
        self._armed[point] = _ArmedFault(point, at=at, probability=None, seed=0)
        self.armed = True

    def arm_seeded(self, point: str, probability: float, seed: int = 0) -> None:
        """Arm ``point`` to fire on each hit with ``probability``, drawn
        from a :class:`random.Random` seeded with ``seed`` (replayable)."""
        self._validate(point)
        if not 0.0 < probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {probability}")
        self._armed[point] = _ArmedFault(
            point, at=None, probability=probability, seed=seed
        )
        self.armed = True

    def disarm(self, point: str | None = None) -> None:
        """Disarm one point (or, with ``None``, every point)."""
        if point is None:
            self._armed.clear()
        else:
            self._armed.pop(point, None)
        self.armed = bool(self._armed)

    # -- instrumentation side ---------------------------------------------

    def trip(self, point: str) -> None:
        """Hit ``point``: raises :class:`FaultInjected` when its armed rule
        fires, otherwise a counted no-op.  Unarmed points are free."""
        fault = self._armed.get(point)
        if fault is not None:
            fault.hit()

    # -- introspection -----------------------------------------------------

    def hits(self, point: str) -> int:
        """Hits recorded at ``point`` since it was armed (0 when unarmed)."""
        fault = self._armed.get(point)
        return fault.hits if fault is not None else 0

    def fired(self, point: str) -> int:
        """Times ``point`` actually raised since it was armed."""
        fault = self._armed.get(point)
        return fault.fired if fault is not None else 0

    @staticmethod
    def _validate(point: str) -> None:
        if point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; registered: {FAULT_POINTS}"
            )

    def __repr__(self) -> str:
        return f"FaultRegistry(armed={sorted(self._armed)})"


#: The process-wide registry every instrumented site trips against.
FAULTS = FaultRegistry()
