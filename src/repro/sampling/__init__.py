"""Sampling-driven refutation engine: two-stage validation, exact results.

Stage 1 harvests violations from a deterministic, size-capped row sample
(:mod:`~repro.sampling.harvester`) into a queryable
:class:`~repro.sampling.refutation.RefutationIndex`; stage 2 sends only
the sample-surviving candidates down the exact PLI path.  The
:class:`~repro.sampling.planner.ValidationPlanner` is the seam the PLI
substrate and the algorithms consult.

Exactness argument: a violation observed in a sample of the relation is a
violation in the relation, so the engine can *refute* candidates with
zero PLI work but never *accept* one — every surviving candidate is still
validated exactly.  Discovered metadata is therefore bit-identical with
and without sampling (the differential suite pins this).
"""

from .harvester import (
    DEFAULT_SAMPLING,
    SamplingConfig,
    focused_sample,
    resolve_sampling,
)
from .planner import ValidationPlanner
from .refutation import RefutationIndex

__all__ = [
    "DEFAULT_SAMPLING",
    "RefutationIndex",
    "SamplingConfig",
    "ValidationPlanner",
    "focused_sample",
    "resolve_sampling",
]
