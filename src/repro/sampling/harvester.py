"""Deterministic, focused row sampling for the refutation engine.

The harvester picks the rows most likely to *witness* violations.  A pair
of rows can only violate an FD candidate ``X → A`` (or duplicate a UCC
candidate ``X``) if it agrees on every column of ``X`` — which means both
rows sit in the same single-column PLI cluster of *each* column in ``X``.
Rows that are singletons in every column can never collide with anything,
so uniform sampling wastes most of its budget on them.  Focused sampling
therefore walks the single-column clusters largest-first, round-robin
across columns, drawing a bounded number of rows per cluster (two rows of
the same cluster are the minimum that can witness anything), and only
tops the sample up with uniform leftovers — those still matter for
empty-lhs (constant-column) checks and IND value probes.

Everything is seeded and size-capped, so a harvest is a pure function of
``(relation, config)``: reruns, parallel workers, and differential tests
all see the same sample.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..faults import FAULTS, SAMPLING_HARVEST
from ..relation.columnset import bit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pli.index import RelationIndex

__all__ = [
    "DEFAULT_SAMPLING",
    "SamplingConfig",
    "focused_sample",
    "resolve_sampling",
]


@dataclass(frozen=True, slots=True)
class SamplingConfig:
    """Tuning knobs of the refutation engine.

    Parameters
    ----------
    enabled:
        Master switch; a disabled config behaves like no config at all.
    max_rows:
        Size cap on the harvested sample.  Refutation queries scan at
        most this many positions, which bounds the stage-1 overhead paid
        by candidates that survive to the exact path.
    seed:
        Seed for the in-cluster and top-up draws (deterministic harvests).
    per_cluster:
        Rows drawn from one single-column cluster per round-robin visit;
        at least two (a lone cluster member witnesses nothing).
    ind_probe_values:
        Distinct values sampled per dependent column by SPIDER's IND
        prefilter; each is probed against the full referenced value set,
        so a miss is an exact refutation.
    min_harvest_seconds:
        Deadline guard: when an active :class:`~repro.guard.Budget` has
        less wall-clock remaining than this, harvesting is skipped
        entirely and every candidate goes straight to the exact path —
        sampling must never convert an ``ok`` run into a ``timeout``.
    """

    enabled: bool = True
    max_rows: int = 128
    seed: int = 0
    per_cluster: int = 8
    ind_probe_values: int = 8
    min_harvest_seconds: float = 0.1

    def __post_init__(self) -> None:
        if self.max_rows < 0:
            raise ValueError(f"max_rows must be >= 0, got {self.max_rows}")
        if self.per_cluster < 2:
            raise ValueError(
                f"per_cluster must be >= 2, got {self.per_cluster}"
            )
        if self.ind_probe_values < 1:
            raise ValueError(
                f"ind_probe_values must be >= 1, got {self.ind_probe_values}"
            )
        if self.min_harvest_seconds < 0:
            raise ValueError(
                "min_harvest_seconds must be non-negative, got "
                f"{self.min_harvest_seconds}"
            )


#: The profilers' default configuration (sampling on).
DEFAULT_SAMPLING = SamplingConfig()


def resolve_sampling(
    sampling: SamplingConfig | bool | None,
) -> SamplingConfig | None:
    """Normalize the ``sampling=`` argument accepted across the stack.

    ``None``/``True`` mean the default (enabled) configuration, ``False``
    disables the engine, and an explicit :class:`SamplingConfig` is used
    as given (``None`` when it is itself disabled).
    """
    if sampling is None or sampling is True:
        return DEFAULT_SAMPLING
    if sampling is False:
        return None
    return sampling if sampling.enabled else None


def focused_sample(index: "RelationIndex", config: SamplingConfig) -> list[int]:
    """Harvest a deterministic row sample of ``index``'s relation.

    Returns sorted row ids, at most ``config.max_rows`` of them.  Each
    selected row trips the :data:`~repro.faults.SAMPLING_HARVEST` fault
    point, so the fault campaign can interrupt a harvest mid-flight.
    """
    n_rows = index.n_rows
    cap = min(config.max_rows, n_rows)
    if cap <= 1:
        # One row witnesses nothing; keep the degenerate sample empty.
        return []
    rng = random.Random(config.seed)
    chosen: set[int] = set()

    def add(row: int) -> None:
        if FAULTS.armed:
            FAULTS.trip(SAMPLING_HARVEST)
        chosen.add(row)

    # Per-column clusters, largest first.  ``peek`` keeps the harvest
    # invisible to the counted cache traffic the harness reports.
    per_column: list[list[tuple[int, ...]]] = []
    for column in range(index.n_columns):
        pli = index.cache.peek(bit(column))
        if pli is not None and pli.clusters:
            per_column.append(sorted(pli.clusters, key=len, reverse=True))

    rank = 0
    while len(chosen) < cap and any(rank < len(c) for c in per_column):
        for clusters in per_column:
            if rank >= len(clusters):
                continue
            budget_left = cap - len(chosen)
            if budget_left <= 0:
                break
            cluster = clusters[rank]
            take = min(config.per_cluster, len(cluster), budget_left)
            picked = (
                rng.sample(cluster, take) if take < len(cluster) else cluster
            )
            for row in picked:
                add(row)
        rank += 1

    # Top up with uniform leftovers for empty-lhs and IND probes.
    if len(chosen) < cap:
        rest = [row for row in range(n_rows) if row not in chosen]
        for row in rng.sample(rest, cap - len(chosen)):
            add(row)
    return sorted(chosen)
