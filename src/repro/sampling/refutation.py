"""Queryable violation evidence harvested from a row sample.

A :class:`RefutationIndex` is the sample-local analogue of the PLI
substrate: per-column value vectors restricted to the sampled rows, plus
memoized sample *groupings* per column mask (the agree-sets of the
sample, stripped to size ≥ 2 like a PLI).  Against it,

* an FD candidate ``X → A`` is **refuted** when some sample group of
  ``X`` is not value-constant in ``A`` (two sampled rows agree on ``X``
  but differ on ``A`` — a difference-set witness),
* a UCC candidate ``X`` is **refuted** when the sample grouping of ``X``
  is non-empty (a sampled duplicate on ``X``).

Both answers are *sound*: sampled rows are relation rows, so a witness in
the sample is a witness in the relation.  The converse does not hold — a
candidate the sample cannot refute may still be invalid — which is why
the planner forwards survivors to the exact PLI path.  Groupings are
derived by peeling the lowest column off the mask (mirroring
:meth:`repro.pli.index.RelationIndex.pli`), so subset-descending query
patterns reuse each other's memoized prefixes.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..relation.columnset import bit, iter_bits, lowest_bit

__all__ = ["RefutationIndex"]


class RefutationIndex:
    """Sample-local groupings with FD/UCC refutation queries.

    Parameters
    ----------
    rows:
        Sampled row ids (ascending; as produced by
        :func:`~repro.sampling.harvester.focused_sample`).
    vectors:
        The relation's full per-column dense value vectors (borrowed from
        the owning :class:`~repro.pli.index.RelationIndex`); only the
        sampled positions are copied out.
    """

    __slots__ = ("rows", "n_columns", "_svectors", "_groups")

    def __init__(self, rows: Sequence[int], vectors: Sequence[Sequence[int]]):
        self.rows: tuple[int, ...] = tuple(rows)
        self.n_columns = len(vectors)
        self._svectors: list[list[int]] = [
            [vector[row] for row in self.rows] for vector in vectors
        ]
        self._groups: dict[int, tuple[tuple[int, ...], ...]] = {}

    @property
    def n_rows(self) -> int:
        """Number of sampled rows."""
        return len(self.rows)

    def groups(self, mask: int) -> tuple[tuple[int, ...], ...]:
        """Stripped sample grouping of a non-empty column mask (memoized).

        Positions index into :attr:`rows`; only groups of size ≥ 2 are
        kept (singleton sample rows witness nothing, exactly like
        stripped PLI clusters).
        """
        if mask == 0:
            raise ValueError("the empty column combination has no grouping")
        cached = self._groups.get(mask)
        if cached is not None:
            return cached
        low = lowest_bit(mask)
        rest = mask & ~bit(low)
        svector = self._svectors[low]
        if rest == 0:
            buckets: dict[int, list[int]] = {}
            for position, value in enumerate(svector):
                buckets.setdefault(value, []).append(position)
            result = tuple(
                tuple(group) for group in buckets.values() if len(group) >= 2
            )
        else:
            refined: list[tuple[int, ...]] = []
            for group in self.groups(rest):
                buckets = {}
                for position in group:
                    buckets.setdefault(svector[position], []).append(position)
                for sub in buckets.values():
                    if len(sub) >= 2:
                        refined.append(tuple(sub))
            result = tuple(refined)
        self._groups[mask] = result
        return result

    def refutes_ucc(self, mask: int) -> bool:
        """True iff the sample holds a duplicate on ``mask`` — an exact
        witness that ``mask`` is not unique."""
        if mask == 0:
            return len(self.rows) >= 2
        return bool(self.groups(mask))

    def refutes_fd(self, lhs_mask: int, rhs_index: int) -> bool:
        """True iff two sampled rows agree on ``lhs_mask`` but differ on
        ``rhs_index`` — an exact witness that the FD does not hold."""
        if lhs_mask >> rhs_index & 1:
            return False  # trivial FDs always hold
        svector = self._svectors[rhs_index]
        if lhs_mask == 0:
            # An empty lhs holds only for constant columns; two distinct
            # sampled values refute it.
            return any(value != svector[0] for value in svector)
        for group in self.groups(lhs_mask):
            first = svector[group[0]]
            for position in group[1:]:
                if svector[position] != first:
                    return True
        return False

    def refuted_rhs(self, lhs_mask: int, rhs_mask: int) -> int:
        """Bitmask of ``rhs_mask`` columns refuted as rhs of ``lhs_mask``.

        Equivalent to or-ing :meth:`refutes_fd` over every rhs bit, but
        walks the sample groups once for the whole candidate set — the
        query shape of level-wise solvers, which refute all right-hand
        sides of a lattice node together.  Columns inside ``lhs_mask``
        (trivial FDs) are never refuted.
        """
        live = rhs_mask & ~lhs_mask
        if not live:
            return 0
        vectors = self._svectors
        refuted = 0
        if lhs_mask == 0:
            for rhs in iter_bits(live):
                svector = vectors[rhs]
                first = svector[0] if svector else None
                if any(value != first for value in svector):
                    refuted |= bit(rhs)
            return refuted
        pending = [(rhs, vectors[rhs]) for rhs in iter_bits(live)]
        for group in self.groups(lhs_mask):
            first = group[0]
            rest = group[1:]
            survivors = []
            for rhs, svector in pending:
                head = svector[first]
                for position in rest:
                    if svector[position] != head:
                        refuted |= bit(rhs)
                        break
                else:
                    survivors.append((rhs, svector))
            pending = survivors
            if not pending:
                break
        return refuted

    def __repr__(self) -> str:
        return (
            f"RefutationIndex({self.n_rows} sampled rows x "
            f"{self.n_columns} columns, {len(self._groups)} cached groupings)"
        )
