"""The two-stage validation seam consulted by the PLI substrate.

A :class:`ValidationPlanner` sits next to the shared
:class:`~repro.pli.index.RelationIndex` (one planner per index, created
by the index when sampling is enabled) and answers one question: *can
this candidate be refuted without exact PLI work?*  Stage 1 lazily
harvests the relation's violation sample on the first query; stage 2 —
the exact path — is whatever the caller does when the answer is "no".

Cooperation with the execution guards: harvesting is skipped when the
active :class:`~repro.guard.Budget` has less deadline left than
``config.min_harvest_seconds`` (the engine then refutes nothing, which is
always safe), so sampling can never convert an ``ok`` run into a
``timeout``.  The decision is made once per planner — a deadline-pressed
run stays on the exact path throughout.

Trace surface (all behind the usual ``ACTIVE is None`` guard): a
``sampling.harvest`` span around stage 1, a ``sampling.bypass`` event
when the deadline guard fires, and ``sampling.fd_refuted`` /
``sampling.ucc_refuted`` / ``sampling.ind_refuted`` /
``sampling.exact_avoided`` counters per refutation.
"""

from __future__ import annotations

import random
import time
import weakref
from collections.abc import Sequence
from typing import TYPE_CHECKING

from .. import guard as _guard
from .. import trace as _trace
from .harvester import SamplingConfig, focused_sample
from .refutation import RefutationIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pli.index import RelationIndex

__all__ = ["ValidationPlanner", "probe_ind_refs"]


def probe_ind_refs(
    value_lists: Sequence[Sequence[str]],
    probe_values: int,
    seed: int,
) -> tuple[list[int], int, int]:
    """SPIDER's seeded value-probe IND prefilter, as a pure function.

    For each dependent attribute, up to ``probe_values`` seeded-sampled
    values are probed against the *full* value set of every other
    attribute; a missing value is an exact witness against the IND, so
    the returned per-attribute reference masks start the merge phase with
    those pairs already cleared.  The attributes may span several
    relations — the probe is pure set membership, so cross-table
    candidates prefilter exactly like same-table ones.

    Returns ``(refs, queries, refuted)``.  Emits the
    ``sampling.ind_prefilter`` span and the ``sampling.ind_refuted`` /
    ``sampling.exact_avoided`` counters; callers with their own
    bookkeeping (:class:`ValidationPlanner`) fold the totals in.
    """
    rng = random.Random(seed)
    n = len(value_lists)
    all_attrs = (1 << n) - 1
    value_sets = [set(values) for values in value_lists]
    refs: list[int] = []
    queries = 0
    refuted = 0
    with _trace.span("sampling.ind_prefilter", columns=n) as span:
        for dependent, values in enumerate(value_lists):
            mask = all_attrs & ~(1 << dependent)
            k = min(probe_values, len(values))
            probes = (
                rng.sample(values, k) if k < len(values) else list(values)
            )
            for referenced in range(n):
                if referenced == dependent:
                    continue
                queries += 1
                members = value_sets[referenced]
                for value in probes:
                    if value not in members:
                        mask &= ~(1 << referenced)
                        refuted += 1
                        break
            refs.append(mask)
        span.set(refuted=refuted)
    tracer = _trace.ACTIVE
    if tracer is not None and refuted:
        tracer.count("sampling.ind_refuted", refuted)
        tracer.count("sampling.exact_avoided", refuted)
    return refs, queries, refuted


class ValidationPlanner:
    """Per-index refutation front end with lazy, guarded harvesting."""

    __slots__ = (
        "_index",
        "config",
        "bypassed",
        "harvest_rows",
        "harvest_seconds",
        "fd_queries",
        "fd_refuted",
        "ucc_queries",
        "ucc_refuted",
        "ind_queries",
        "ind_refuted",
        "_refutation",
        "_attempted",
    )

    def __init__(self, index: "RelationIndex", config: SamplingConfig):
        # Weak back-reference: the index owns its planner, so a strong
        # reference here would turn every index/planner pair into cyclic
        # garbage that only a collector pass frees.  Encoded-storage runs
        # allocate so few Python objects that those passes are rare, and
        # each uncollected pair pins two single-column PLIs (plus their
        # kernel arrays) — per-pair profiling sweeps leak gigabytes.
        self._index = weakref.ref(index)
        self.config = config
        #: True when the deadline guard skipped the harvest for this run.
        self.bypassed = False
        self.harvest_rows = 0
        self.harvest_seconds = 0.0
        self.fd_queries = 0
        self.fd_refuted = 0
        self.ucc_queries = 0
        self.ucc_refuted = 0
        self.ind_queries = 0
        self.ind_refuted = 0
        self._refutation: RefutationIndex | None = None
        self._attempted = False

    @property
    def index(self) -> "RelationIndex":
        """The owning index (weakly held; see ``__init__``)."""
        index = self._index()
        if index is None:
            raise ReferenceError(
                "the RelationIndex owning this ValidationPlanner has been "
                "garbage-collected; keep a reference to the index while "
                "querying its planner"
            )
        return index

    # -- stage 1: harvest --------------------------------------------------

    def refutation(self) -> RefutationIndex | None:
        """The harvested refutation index, built on first use.

        Returns ``None`` (and permanently passes every candidate through
        to the exact path) when the deadline guard fires or the relation
        is too small to sample.  Harvesting happens at most once per
        planner; a harvest aborted by an injected fault is not retried
        and leaves no partial evidence behind.
        """
        refutation = self._refutation
        if refutation is not None:
            return refutation
        if self._attempted:
            return None
        self._attempted = True
        budget = _guard.ACTIVE
        if budget is not None:
            remaining = budget.remaining_seconds
            if (
                remaining is not None
                and remaining < self.config.min_harvest_seconds
            ):
                self.bypassed = True
                tracer = _trace.ACTIVE
                if tracer is not None:
                    tracer.event(
                        "sampling.bypass",
                        reason="deadline",
                        remaining_seconds=remaining,
                    )
                return None
        index = self.index
        started = time.perf_counter()
        with _trace.span(
            "sampling.harvest",
            relation=index.relation.name,
            rows=index.n_rows,
            max_rows=self.config.max_rows,
        ) as span:
            rows = focused_sample(index, self.config)
            refutation = RefutationIndex(
                rows, [index.vector(c) for c in range(index.n_columns)]
            )
            span.set(sample_rows=len(rows))
        self.harvest_seconds = time.perf_counter() - started
        self.harvest_rows = len(rows)
        tracer = _trace.ACTIVE
        if tracer is not None and rows:
            tracer.count("sampling.harvest_rows", len(rows))
        self._refutation = refutation
        return refutation

    def reset_evidence(self) -> None:
        """Drop the harvested sample (the relation's rows changed).

        Called by the index after an append batch is folded in: the old
        sample's vectors describe the pre-append rows, so the next stage-1
        query re-harvests over the grown relation.  Query counters are
        kept — they account work actually done.  A deadline bypass is also
        cleared; the post-append run re-evaluates its own deadline.
        """
        self._refutation = None
        self._attempted = False
        self.bypassed = False

    # -- stage 1 queries ---------------------------------------------------

    def refutes_fd(self, lhs_mask: int, rhs_index: int) -> bool:
        """Sound sample refutation of ``lhs → rhs``; False means "go
        exact", never "valid"."""
        refutation = self.refutation()
        if refutation is None:
            return False
        self.fd_queries += 1
        if refutation.refutes_fd(lhs_mask, rhs_index):
            self.fd_refuted += 1
            tracer = _trace.ACTIVE
            if tracer is not None:
                tracer.count("sampling.fd_refuted")
                tracer.count("sampling.exact_avoided")
            return True
        return False

    def refuted_rhs(self, lhs_mask: int, rhs_mask: int) -> int:
        """Batched :meth:`refutes_fd` over every rhs bit in ``rhs_mask``
        (one sample scan per lattice node instead of one per rhs); the
        returned bitmask marks sample-refuted right-hand sides."""
        refutation = self.refutation()
        if refutation is None:
            return 0
        self.fd_queries += (rhs_mask & ~lhs_mask).bit_count()
        refuted = refutation.refuted_rhs(lhs_mask, rhs_mask)
        hits = refuted.bit_count()
        if hits:
            self.fd_refuted += hits
            tracer = _trace.ACTIVE
            if tracer is not None:
                tracer.count("sampling.fd_refuted", hits)
                tracer.count("sampling.exact_avoided", hits)
        return refuted

    def refutes_ucc(self, mask: int) -> bool:
        """Sound sample refutation of a UCC candidate; False means "go
        exact", never "unique"."""
        refutation = self.refutation()
        if refutation is None:
            return False
        self.ucc_queries += 1
        if refutation.refutes_ucc(mask):
            self.ucc_refuted += 1
            tracer = _trace.ACTIVE
            if tracer is not None:
                tracer.count("sampling.ucc_refuted")
                tracer.count("sampling.exact_avoided")
            return True
        return False

    def prefilter_ind_refs(
        self, value_lists: Sequence[Sequence[str]]
    ) -> list[int] | None:
        """SPIDER's sampled value-probe prefilter.

        For each dependent attribute, probes up to
        ``config.ind_probe_values`` seeded-sampled values against the
        *full* value set of every other attribute; a missing value is an
        exact witness against the IND, and the returned per-attribute
        reference masks start the merge phase with those pairs already
        cleared.  Returns ``None`` when the engine is bypassed.
        """
        if self.refutation() is None:
            return None
        refs, queries, refuted = probe_ind_refs(
            value_lists, self.config.ind_probe_values, self.config.seed
        )
        self.ind_queries += queries
        self.ind_refuted += refuted
        return refs

    # -- accounting --------------------------------------------------------

    def stats(self) -> dict[str, int | float]:
        """Engine counters for harness reporting (candidates refuted,
        harvest cost, exact checks avoided)."""
        return {
            "sampling_rows": self.harvest_rows,
            "sampling_harvest_seconds": self.harvest_seconds,
            "sampling_bypassed": int(self.bypassed),
            "sampling_fd_queries": self.fd_queries,
            "sampling_fd_refuted": self.fd_refuted,
            "sampling_ucc_queries": self.ucc_queries,
            "sampling_ucc_refuted": self.ucc_refuted,
            "sampling_ind_queries": self.ind_queries,
            "sampling_ind_refuted": self.ind_refuted,
            "sampling_exact_avoided": (
                self.fd_refuted + self.ucc_refuted + self.ind_refuted
            ),
        }

    # -- checkpoint round-trip ---------------------------------------------

    _COUNTER_SLOTS = (
        "bypassed",
        "harvest_rows",
        "fd_queries",
        "fd_refuted",
        "ucc_queries",
        "ucc_refuted",
        "ind_queries",
        "ind_refuted",
    )

    def state(self) -> dict[str, int]:
        """Query/refutation counters for intra-execution checkpoints.

        Only the counters travel: the refutation index itself is rebuilt
        deterministically (same relation, same config) on first use after
        a resume, so restoring the counters makes a resumed run's totals
        equal pre-crash work plus replay — the undisturbed values.
        """
        return {name: getattr(self, name) for name in self._COUNTER_SLOTS}

    def restore(self, state: dict[str, int]) -> None:
        """Overwrite the query counters with a :meth:`state` snapshot."""
        for name in self._COUNTER_SLOTS:
            setattr(self, name, state[name])

    def __repr__(self) -> str:
        state = (
            "bypassed"
            if self.bypassed
            else f"{self.harvest_rows} sampled rows"
            if self._refutation is not None
            else "not harvested"
        )
        return (
            f"ValidationPlanner({state}, fd_refuted={self.fd_refuted}, "
            f"ucc_refuted={self.ucc_refuted}, ind_refuted={self.ind_refuted})"
        )
