"""Import-order-neutral face of the checkpoint layer.

The checkpoint subsystem proper — file format, atomic writes, the
store — lives in :mod:`repro.harness.checkpoint`.  But the *algorithms*
are below the harness in the import order (the harness imports the
profilers, which import the algorithms), so, exactly like
:mod:`repro.guard` and :mod:`repro.faults`, the few names the lattice
loops touch live here in a stdlib-only module: the process-global
:data:`ACTIVE` session handle, the :class:`SimulatedCrash` kill used by
the differential matrix, and the JSON state-encoding helpers.

Algorithms never import the session class; they duck-type against
whatever object :func:`active_session` installed (``resume`` /
``boundary`` / ``context`` / ``merge_stride``), so a traversal compiled
with checkpoint support costs one global read when checkpointing is off.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Mapping

__all__ = [
    "ACTIVE",
    "SimulatedCrash",
    "active_session",
    "mask_dict",
    "mask_items",
    "pli_from_state",
    "pli_state",
    "rng_state_from_json",
    "rng_state_to_json",
]


class SimulatedCrash(BaseException):
    """A test-injected process kill at a checkpoint boundary.

    Subclasses :class:`BaseException` so the harness's ``except
    Exception`` containment cannot swallow it — exactly like the real
    ``SIGKILL`` it stands in for, it unwinds all the way out.
    """

    def __init__(self, stage: str, boundary: int):
        super().__init__(f"simulated crash after boundary #{boundary} ({stage})")
        self.stage = stage
        self.boundary = boundary


#: The currently running execution's checkpoint session (``None`` =
#: checkpointing off).  Installed by :func:`active_session`; read by the
#: lattice loops at their level/phase boundaries.
ACTIVE: Any | None = None


@contextmanager
def active_session(session: Any | None) -> Iterator[None]:
    """Install ``session`` as the process-wide active checkpoint session
    for the enclosed execution (``None`` is a no-op, like ``guarded``)."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = session
    try:
        yield
    finally:
        ACTIVE = previous


# -- state-encoding helpers -------------------------------------------------
#
# Checkpoint state must be JSON: no pickles (a checkpoint written by a
# dying process is untrusted input on resume) and no Python-only types.
# These helpers round-trip the three awkward shapes exactly.


def pli_state(pli: Any) -> dict[str, Any]:
    """JSON form of one PLI (canonical stripped clusters + row count)."""
    return {
        "clusters": [list(cluster) for cluster in pli.clusters],
        "rows": pli.n_rows,
    }


def pli_from_state(state: Mapping[str, Any]) -> Any:
    """Rebuild a PLI from :func:`pli_state` via the validating constructor."""
    from .pli.pli import PLI

    return PLI(state["clusters"], state["rows"])


def mask_items(mapping: Mapping[int, Any]) -> list[list[Any]]:
    """Encode an int-keyed mapping as an iteration-ordered pair list.

    JSON objects stringify keys and some frontier dicts (FUN's free-set
    levels) have *semantic* iteration order, so a plain ``dict`` dump
    would corrupt both the keys and the order.
    """
    return [[int(key), value] for key, value in mapping.items()]


def mask_dict(items: Any) -> dict[int, Any]:
    """Decode :func:`mask_items` back to an insertion-ordered dict."""
    return {int(key): value for key, value in items}


def rng_state_to_json(rng: Any) -> list[Any]:
    """JSON form of a :class:`random.Random` state (exact round-trip)."""
    version, internal, gauss = rng.getstate()
    return [version, list(internal), gauss]


def rng_state_from_json(state: Any) -> tuple[Any, ...]:
    """Decode :func:`rng_state_to_json` for :meth:`random.Random.setstate`."""
    version, internal, gauss = state
    return (version, tuple(internal), gauss)
