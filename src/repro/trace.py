"""Structured tracing: spans, counters, and gauges for per-phase metrics.

The paper's evaluation (§6) is an argument about *where* time goes —
which lattice levels are visited, how many candidates each level
generates/prunes/validates, how much of a run is PLI intersection work —
yet wall-clock totals alone cannot regenerate those breakdowns.  This
module is the process-local event layer that makes them observable:

* :class:`Tracer` collects a flat list of JSON-ready event dicts;
* ``tracer.span(name, **attrs)`` opens a nested, monotonic-clock-timed
  span (one per lattice level, algorithm phase, or framework execution);
* ``tracer.count(name, n)`` accumulates cheap high-frequency counters
  into the innermost open span (rolled up to the parent on exit);
* ``tracer.counter/gauge/event(...)`` emit standalone typed events.

Tracing is **off by default** and built for near-zero disabled overhead:
the whole layer hangs off the module global :data:`ACTIVE` (``None``
when disabled), so instrumented hot paths pay one global read and one
``is None`` branch — the same pattern the execution guard uses — and
must not build attribute dicts or f-strings before that check.

Events are deterministic modulo timestamps: every wall-clock value lives
under the ``"seconds"`` key, which :func:`structural` strips, and span
ids can be rebased per captured slice (:class:`capture`), so the traces
of a serial sweep and of a ``jobs=N`` sweep compare structurally equal.

Like :mod:`repro.guard`, this is a stdlib-only leaf module so the PLI
kernel and the algorithms can hook in without importing the harness;
:mod:`repro.harness.trace` re-exports the public names for harness users.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "Tracer",
    "Span",
    "NULL_SPAN",
    "ACTIVE",
    "enable",
    "disable",
    "active",
    "span",
    "count",
    "event",
    "capture",
    "rebase",
    "structural",
    "write_jsonl",
    "read_jsonl",
    "trace_summary",
    "summary_total_seconds",
    "DEFAULT_SCHEMA",
    "validate_events",
    "validate_trace_file",
    "env_trace_path",
]


class Span:
    """One timed, attributed, counter-carrying section of a trace.

    Created by :meth:`Tracer.span` and registered lazily on ``__enter__``
    (so an unentered span costs nothing): the begin event captures the
    nesting position, the end event the monotonic duration, the final
    attributes (initial ones merged with :meth:`set` updates), and the
    counters accumulated while the span was innermost.  On exit the
    counters are rolled up into the parent span, so outer spans report
    inclusive totals.
    """

    __slots__ = ("tracer", "name", "attrs", "counters", "span_id", "_started")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.counters: dict[str, int | float] = {}
        self.span_id: int | None = None
        self._started = 0.0

    def set(self, **attrs: Any) -> None:
        """Merge attributes into the span (reported in the end event)."""
        self.attrs.update(attrs)

    def count(self, name: str, value: int | float = 1) -> None:
        """Accumulate a counter on this span directly."""
        self.counters[name] = self.counters.get(name, 0) + value

    def __enter__(self) -> "Span":
        tracer = self.tracer
        self.span_id = tracer._next_id
        tracer._next_id += 1
        stack = tracer._stack
        parent = stack[-1].span_id if stack else None
        stack.append(self)
        tracer.events.append(
            {
                "type": "begin",
                "span": self.span_id,
                "parent": parent,
                "name": self.name,
                "attrs": dict(self.attrs),
            }
        )
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        seconds = time.perf_counter() - self._started
        tracer = self.tracer
        stack = tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # tolerate mis-nested exits; never corrupt
            stack.remove(self)
        if stack and self.counters:
            parent = stack[-1]
            for name, value in self.counters.items():
                parent.counters[name] = parent.counters.get(name, 0) + value
        tracer.events.append(
            {
                "type": "end",
                "span": self.span_id,
                "name": self.name,
                "seconds": seconds,
                "attrs": dict(self.attrs),
                "counters": dict(self.counters),
            }
        )
        return False


class _NullSpan:
    """The disabled-mode span: every operation is a no-op."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def count(self, name: str, value: int | float = 1) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


#: Shared no-op span returned by the module helpers while disabled.
NULL_SPAN = _NullSpan()


class Tracer:
    """Process-local collector of structured trace events.

    ``events`` is a flat list of plain dicts (JSON-ready; see
    :data:`DEFAULT_SCHEMA`), appended in emission order: begin events
    give the nesting structure, end events the timings and counters.
    ``counters`` holds :meth:`count` increments that occur outside any
    open span (rare; surfaced programmatically, not as events, so a hot
    loop outside a span cannot flood the buffer).
    """

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []
        self.counters: dict[str, int | float] = {}
        self._stack: list[Span] = []
        self._next_id = 0

    # -- spans ------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """A new (unentered) span; use as ``with tracer.span(...) as s:``."""
        return Span(self, name, attrs)

    @property
    def current_span_id(self) -> int | None:
        """Id of the innermost open span (``None`` at top level)."""
        return self._stack[-1].span_id if self._stack else None

    # -- high-frequency counters ------------------------------------------

    def count(self, name: str, value: int | float = 1) -> None:
        """Accumulate a counter on the innermost open span.

        The cheap path for per-operation instrumentation (PLI
        intersections, cache hits): a dict upsert, no event emitted.
        Outside any span the increment lands in :attr:`counters`.
        """
        stack = self._stack
        if stack:
            counters = stack[-1].counters
        else:
            counters = self.counters
        counters[name] = counters.get(name, 0) + value

    # -- standalone typed events -------------------------------------------

    def counter(self, name: str, value: int | float, **attrs: Any) -> None:
        """Emit a standalone counter event (a point-in-time increment)."""
        record: dict[str, Any] = {
            "type": "counter",
            "name": name,
            "value": value,
            "span": self.current_span_id,
        }
        if attrs:
            record["attrs"] = attrs
        self.events.append(record)

    def gauge(self, name: str, value: int | float, **attrs: Any) -> None:
        """Emit a gauge event (a sampled absolute value)."""
        record: dict[str, Any] = {
            "type": "gauge",
            "name": name,
            "value": value,
            "span": self.current_span_id,
        }
        if attrs:
            record["attrs"] = attrs
        self.events.append(record)

    def event(self, name: str, **attrs: Any) -> None:
        """Emit a generic named event (e.g. ``cache.hit``)."""
        self.events.append(
            {
                "type": "event",
                "name": name,
                "attrs": attrs,
                "span": self.current_span_id,
            }
        )

    def __repr__(self) -> str:
        return (
            f"Tracer({len(self.events)} events, depth={len(self._stack)})"
        )


#: The process-local tracer, or ``None`` when tracing is disabled.
#: Hot paths read this exactly once and branch on ``is None`` — do not
#: build attributes or format strings before that check.
ACTIVE: Tracer | None = None


def enable() -> Tracer:
    """Turn tracing on with a fresh tracer (discarding any prior one)."""
    global ACTIVE
    ACTIVE = Tracer()
    return ACTIVE


def disable() -> None:
    """Turn tracing off (instrumented sites become near-free again)."""
    global ACTIVE
    ACTIVE = None


def active() -> Tracer | None:
    """The active tracer, or ``None`` when disabled."""
    return ACTIVE


# -- module-level conveniences (cold call sites only) ----------------------


def span(name: str, **attrs: Any) -> Span | _NullSpan:
    """Open-a-span helper for cold call sites.

    Hot loops must guard with ``if trace.ACTIVE is not None:`` *before*
    building attributes; this helper constructs its kwargs dict
    unconditionally and is therefore only for code that runs a handful
    of times per profile.
    """
    tracer = ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def count(name: str, value: int | float = 1) -> None:
    """Counter helper for cold call sites (see :func:`span` caveat)."""
    tracer = ACTIVE
    if tracer is not None:
        tracer.count(name, value)


def event(name: str, **attrs: Any) -> None:
    """Standalone-event helper for cold call sites."""
    tracer = ACTIVE
    if tracer is not None:
        tracer.event(name, **attrs)


# -- capture (per-sweep-point trace slices) --------------------------------


def rebase(events: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Renumber span ids to 0..n in first-appearance order.

    Parents outside the slice map to ``None``.  This is what makes a
    captured slice independent of everything traced before it — the
    point traces of a serial sweep and of pool workers (whose tracers
    carry different histories) become structurally comparable.
    """
    mapping: dict[int, int] = {}
    rebased: list[dict[str, Any]] = []
    for record in events:
        record = dict(record)
        span_id = record.get("span")
        if span_id is not None:
            if span_id not in mapping:
                mapping[span_id] = len(mapping)
            record["span"] = mapping[span_id]
        if "parent" in record and record["parent"] is not None:
            record["parent"] = mapping.get(record["parent"])
        rebased.append(record)
    return rebased


class capture:
    """Collect the events emitted while the context is active.

    ``events`` holds the rebased slice after exit (``[]`` when tracing
    is disabled).  With ``drain=True`` the collected events are removed
    from the tracer's buffer — the mode the sweep runner uses so a
    long-lived process does not accumulate every point's trace twice
    (once in the buffer, once on the :class:`SweepPoint`).
    """

    def __init__(self, drain: bool = False):
        self.drain = drain
        self.events: list[dict[str, Any]] = []
        self._tracer: Tracer | None = None
        self._mark = 0

    def __enter__(self) -> "capture":
        tracer = ACTIVE
        self._tracer = tracer
        self._mark = len(tracer.events) if tracer is not None else 0
        return self

    def __exit__(self, *exc_info: object) -> bool:
        tracer = self._tracer
        if tracer is not None:
            self.events = rebase(tracer.events[self._mark:])
            if self.drain:
                del tracer.events[self._mark:]
        return False


def structural(events: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Deep-copied events with every volatile field stripped.

    Timings all live under the ``"seconds"`` key by convention, so
    removing it (and normalizing through JSON, which also maps tuples to
    lists exactly like a journal round-trip does) leaves the
    deterministic skeleton: names, nesting, attributes, counters.  Two
    runs of the same work — serial vs. pooled, traced now vs. replayed
    from a journal — compare equal on this form.
    """
    stripped: list[dict[str, Any]] = []
    for record in events:
        record = json.loads(json.dumps(record, sort_keys=True, default=str))
        record.pop("seconds", None)
        stripped.append(record)
    return stripped


# -- JSONL sink -------------------------------------------------------------


def write_jsonl(
    events: Iterable[Mapping[str, Any]], path: str | os.PathLike[str]
) -> int:
    """Write events one JSON object per line; returns the event count."""
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in events:
            handle.write(json.dumps(record, sort_keys=True, default=str))
            handle.write("\n")
            written += 1
    return written


def read_jsonl(path: str | os.PathLike[str]) -> list[dict[str, Any]]:
    """Read a JSONL trace back into a list of event dicts."""
    events: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def env_trace_path() -> str | None:
    """Trace output path requested via ``$REPRO_TRACE``, if any.

    ``REPRO_TRACE`` enables tracing when set to anything but ``""``/``0``;
    a value that is not a plain boolean token is additionally treated as
    the JSONL output path (the CLI's ``--trace`` default).
    """
    value = os.environ.get("REPRO_TRACE", "")
    if value in ("", "0") or value.lower() in ("1", "true", "yes", "on"):
        return None
    return value


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "") not in ("", "0")


# -- aggregation ------------------------------------------------------------


def trace_summary(
    events: Iterable[Mapping[str, Any]]
) -> dict[str, dict[str, Any]]:
    """Aggregate a trace into per-phase rows (the Fig. 8-style table).

    Spans aggregate by name — split per lattice level when a ``level``
    attribute is present (``"tane.level[3]"``) — into rows with
    ``count``, inclusive ``seconds``, exclusive ``self_seconds``
    (inclusive minus direct children), and summed ``counters``.
    Standalone counter/gauge/event records aggregate by name with their
    occurrence count (and summed ``value`` for counters).

    Because self-seconds partition each root span's duration exactly,
    ``sum(row["self_seconds"])`` over all rows reconstructs the traced
    wall time — the invariant the harness tests pin to within 10 % of
    the reported runtime.
    """
    events = list(events)
    parent_of: dict[int, int | None] = {}
    for record in events:
        if record.get("type") == "begin":
            parent_of[record["span"]] = record.get("parent")

    child_seconds: dict[int, float] = {}
    for record in events:
        if record.get("type") != "end":
            continue
        parent = parent_of.get(record["span"])
        if parent is not None:
            child_seconds[parent] = child_seconds.get(parent, 0.0) + record.get(
                "seconds", 0.0
            )

    summary: dict[str, dict[str, Any]] = {}

    def row(key: str) -> dict[str, Any]:
        entry = summary.get(key)
        if entry is None:
            entry = summary[key] = {
                "count": 0,
                "seconds": 0.0,
                "self_seconds": 0.0,
                "counters": {},
            }
        return entry

    for record in events:
        kind = record.get("type")
        if kind == "end":
            attrs = record.get("attrs") or {}
            key = record["name"]
            if "level" in attrs:
                key = f"{key}[{attrs['level']}]"
            entry = row(key)
            seconds = record.get("seconds", 0.0)
            entry["count"] += 1
            entry["seconds"] += seconds
            entry["self_seconds"] += seconds - child_seconds.get(
                record["span"], 0.0
            )
            for name, value in (record.get("counters") or {}).items():
                entry["counters"][name] = entry["counters"].get(name, 0) + value
        elif kind in ("counter", "gauge", "event"):
            entry = row(record["name"])
            entry["count"] += 1
            if kind == "counter":
                entry["counters"]["value"] = (
                    entry["counters"].get("value", 0) + record.get("value", 0)
                )
    return summary


def summary_total_seconds(summary: Mapping[str, Mapping[str, Any]]) -> float:
    """Total traced wall time: the sum of every row's self-seconds."""
    return sum(entry.get("self_seconds", 0.0) for entry in summary.values())


# -- schema validation -------------------------------------------------------

#: The trace wire format, mirrored by ``docs/trace_schema.json`` (CI
#: validates emitted JSONL against the checked-in copy; a test keeps the
#: two in sync).  Field types use a compact union notation
#: (``"int|null"``); ``optional`` fields may be absent, unknown fields
#: are rejected so drift surfaces immediately.
DEFAULT_SCHEMA: dict[str, Any] = {
    "description": (
        "repro structured trace, one JSON event object per line; every "
        "wall-clock value lives under the 'seconds' key so consumers can "
        "strip timings for structural comparison"
    ),
    "event_types": {
        "begin": {
            "required": {
                "span": "int",
                "parent": "int|null",
                "name": "str",
                "attrs": "object",
            },
            "optional": {},
        },
        "end": {
            "required": {
                "span": "int",
                "name": "str",
                "seconds": "float",
                "attrs": "object",
                "counters": "object",
            },
            "optional": {},
        },
        "counter": {
            "required": {"name": "str", "value": "int|float"},
            "optional": {"span": "int|null", "attrs": "object"},
        },
        "gauge": {
            "required": {"name": "str", "value": "int|float"},
            "optional": {"span": "int|null", "attrs": "object"},
        },
        "event": {
            "required": {"name": "str", "attrs": "object"},
            "optional": {"span": "int|null", "seconds": "float"},
        },
    },
    # Informative registry of well-known event names (not exhaustive —
    # validation keys off event_types only, so unknown names still pass).
    "names": {
        "pli": {
            "spans": ["pli.build_index"],
            "counters": [
                "pli.intersections",
                "pli.clustered_rows",
                "pli.probe_builds",
                "pli.probe_reuses",
                "pli.store_reuses",
                "pli.delta_merges",
                "pli.delta_reclustered_rows",
            ],
            "events": [],
        },
        "incremental": {
            "spans": [
                "incremental.append",
                "incremental.maintain",
                "incremental.revalidate_uccs",
                "incremental.revalidate_fds",
                "incremental.revalidate_inds",
            ],
            "counters": [
                "incremental.appended_rows",
                "incremental.partner_rows",
                "incremental.refuted_uccs",
                "incremental.refuted_fds",
                "incremental.ind_rechecks",
                "incremental.composites_kept",
                "incremental.composites_deferred",
            ],
            "events": ["incremental.watch_update"],
        },
        "sampling": {
            "spans": ["sampling.harvest", "sampling.ind_prefilter"],
            "counters": [
                "sampling.harvest_rows",
                "sampling.fd_refuted",
                "sampling.ucc_refuted",
                "sampling.ind_refuted",
                "sampling.exact_avoided",
            ],
            "events": ["sampling.bypass"],
        },
        "cache": {
            "spans": [],
            "counters": ["cache.corrupt"],
            "events": ["cache.hit", "cache.corrupt", "cache.put_failed"],
        },
        "checkpoint": {
            "spans": [],
            "counters": ["checkpoint.saves", "checkpoint.loads"],
            "events": [
                "checkpoint.save",
                "checkpoint.load",
                "checkpoint.complete",
            ],
        },
        "retry": {
            "spans": [],
            "counters": [
                "retry.retries",
                "retry.recovered",
                "retry.exhausted",
            ],
            "events": ["retry.backoff"],
        },
        "watchdog": {
            "spans": [],
            "counters": ["watchdog.kills"],
            "events": ["watchdog.kill"],
        },
        "storage": {
            "spans": ["storage.encode"],
            "counters": [
                "storage.encoded_columns",
                "storage.dictionary_entries",
                "storage.spilled_bytes",
            ],
            "events": [],
        },
        "schema": {
            "spans": [
                "schema.job",
                "schema.load",
                "schema.profile",
                "schema.cross_inds",
                "schema.rank_fks",
            ],
            "counters": [
                "schema.tables",
                "schema.dedup_hits",
                "schema.inds_across",
                "schema.fk_candidates",
            ],
            "events": ["schema.dedup", "schema.load_failed"],
        },
    },
}

_TYPE_CHECKS = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "str": lambda v: isinstance(v, str),
    "bool": lambda v: isinstance(v, bool),
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "null": lambda v: v is None,
}


def _matches(value: Any, spec: str) -> bool:
    return any(_TYPE_CHECKS[name](value) for name in spec.split("|"))


def validate_events(
    events: Sequence[Mapping[str, Any]],
    schema: Mapping[str, Any] | None = None,
) -> int:
    """Validate events against the trace schema; returns the event count.

    Raises :class:`ValueError` naming the first offending event, its
    index, and what was wrong — a malformed trace must fail loudly, not
    render a silently wrong per-phase table.
    """
    schema = schema or DEFAULT_SCHEMA
    event_types = schema["event_types"]
    for index, record in enumerate(events):
        if not isinstance(record, Mapping):
            raise ValueError(f"event {index}: not an object: {record!r}")
        kind = record.get("type")
        if kind not in event_types:
            raise ValueError(
                f"event {index}: unknown type {kind!r} "
                f"(expected one of {sorted(event_types)})"
            )
        shape = event_types[kind]
        required, optional = shape["required"], shape["optional"]
        for field, spec in required.items():
            if field not in record:
                raise ValueError(
                    f"event {index} ({kind}): missing field {field!r}"
                )
            if not _matches(record[field], spec):
                raise ValueError(
                    f"event {index} ({kind}): field {field!r} is "
                    f"{record[field]!r}, expected {spec}"
                )
        for field, value in record.items():
            if field == "type" or field in required:
                continue
            if field not in optional:
                raise ValueError(
                    f"event {index} ({kind}): unexpected field {field!r}"
                )
            if not _matches(value, optional[field]):
                raise ValueError(
                    f"event {index} ({kind}): field {field!r} is "
                    f"{value!r}, expected {optional[field]}"
                )
    return len(events)


def validate_trace_file(
    path: str | os.PathLike[str],
    schema_path: str | os.PathLike[str] | None = None,
) -> int:
    """Parse and validate a JSONL trace file; returns the event count.

    ``schema_path`` points at a checked-in schema document (CI uses
    ``docs/trace_schema.json``); ``None`` validates against the built-in
    :data:`DEFAULT_SCHEMA`.
    """
    schema = None
    if schema_path is not None:
        with open(schema_path, "r", encoding="utf-8") as handle:
            schema = json.load(handle)
    return validate_events(read_jsonl(path), schema)


# Opt-in via environment: workers spawned with REPRO_TRACE set come up
# tracing without any in-band coordination.
if _env_enabled():  # pragma: no cover - exercised via subprocess tests
    ACTIVE = Tracer()
