"""Functional dependencies (§2.3)."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..relation.columnset import mask_of

__all__ = ["FD"]


@dataclass(frozen=True, slots=True, order=True)
class FD:
    """A functional dependency ``lhs → rhs`` with a single right-hand side.

    Discovery algorithms emit *minimal, non-trivial* FDs: ``rhs ∉ lhs`` and
    no proper subset of ``lhs`` determines ``rhs``.  Multi-rhs notation
    (``X → YZ``) is just shorthand for several single-rhs FDs; results use
    the canonical single-rhs form.
    """

    lhs: tuple[str, ...]
    rhs: str

    def __init__(self, lhs: Sequence[str], rhs: str):
        left = tuple(lhs)
        if len(set(left)) != len(left):
            raise ValueError(f"duplicate columns in FD left-hand side {left!r}")
        if rhs in left:
            raise ValueError(f"trivial FD {left!r} → {rhs!r}")
        object.__setattr__(self, "lhs", left)
        object.__setattr__(self, "rhs", rhs)

    def sorted_by_schema(self, column_names: Sequence[str]) -> "FD":
        """Return a copy with the lhs ordered by schema position."""
        position = {name: i for i, name in enumerate(column_names)}
        return FD(tuple(sorted(self.lhs, key=position.__getitem__)), self.rhs)

    def lhs_mask(self, column_names: Sequence[str]) -> int:
        """Bitmask of the left-hand side under the given schema."""
        position = {name: i for i, name in enumerate(column_names)}
        return mask_of(position[c] for c in self.lhs)

    def __len__(self) -> int:
        return len(self.lhs)

    def __str__(self) -> str:
        return ", ".join(self.lhs) + " → " + self.rhs
