"""Metadata domain model: INDs, UCCs, FDs, and the joint result container."""

from .cover import (
    attribute_closure,
    canonical_cover,
    equivalent,
    fds_to_pairs,
    implies,
    pairs_to_fds,
)
from .fd import FD
from .ind import IND
from .measures import fd_error, ind_containment, ucc_error
from .results import ProfilingResult, fd_signature, ucc_signature
from .serialize import dumps, loads, result_from_dict, result_to_dict
from .ucc import UCC

__all__ = [
    "FD",
    "IND",
    "UCC",
    "ProfilingResult",
    "attribute_closure",
    "canonical_cover",
    "dumps",
    "equivalent",
    "fds_to_pairs",
    "implies",
    "pairs_to_fds",
    "fd_error",
    "fd_signature",
    "ind_containment",
    "loads",
    "result_from_dict",
    "result_to_dict",
    "ucc_error",
    "ucc_signature",
]
