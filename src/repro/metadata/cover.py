"""FD-set reasoning: closures, implication, covers, equivalence.

Dependency discovery hands back a minimal FD set; downstream tasks —
schema normalization, constraint maintenance, comparing profiling runs —
need Armstrong-style reasoning over such sets.  Everything here operates
on ``(lhs_mask, rhs_index)`` pairs, the same representation the
algorithms use internally.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..relation.columnset import bit, iter_bits
from .fd import FD

__all__ = [
    "attribute_closure",
    "implies",
    "equivalent",
    "canonical_cover",
    "fds_to_pairs",
    "pairs_to_fds",
]


def attribute_closure(attrs: int, fds: Iterable[tuple[int, int]]) -> int:
    """Closure of an attribute set under an FD list (Armstrong fixpoint).

    Linear-ish fixpoint: iterate until no FD fires anymore.
    """
    fd_list = list(fds)
    closure = attrs
    changed = True
    while changed:
        changed = False
        for lhs, rhs in fd_list:
            rhs_bit = 1 << rhs
            if not closure & rhs_bit and lhs & ~closure == 0:
                closure |= rhs_bit
                changed = True
    return closure


def implies(fds: Iterable[tuple[int, int]], lhs: int, rhs: int) -> bool:
    """True iff the FD set logically implies ``lhs → rhs``."""
    return bool(attribute_closure(lhs, fds) >> rhs & 1)


def equivalent(
    first: Iterable[tuple[int, int]], second: Iterable[tuple[int, int]]
) -> bool:
    """True iff two FD sets imply each other (same logical closure)."""
    first_list, second_list = list(first), list(second)
    return all(
        implies(second_list, lhs, rhs) for lhs, rhs in first_list
    ) and all(implies(first_list, lhs, rhs) for lhs, rhs in second_list)


def canonical_cover(fds: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Minimal cover: no redundant FDs, no extraneous lhs attributes.

    Classic two-step reduction: first left-reduce every FD (drop lhs
    attributes whose removal keeps the FD implied), then drop FDs implied
    by the rest.  The result implies exactly the same closure (tested
    property) and is deterministic for a given input order modulo the
    final sort.
    """
    working = sorted(set(fds))
    # Left-reduction.
    reduced: list[tuple[int, int]] = []
    for lhs, rhs in working:
        current = lhs
        for column in iter_bits(lhs):
            candidate = current & ~bit(column)
            if implies(working, candidate, rhs):
                current = candidate
        reduced.append((current, rhs))
    reduced = sorted(set(reduced))
    # Redundancy elimination.
    essential: list[tuple[int, int]] = list(reduced)
    for fd in reduced:
        rest = [other for other in essential if other != fd]
        if implies(rest, fd[0], fd[1]):
            essential = rest
    return sorted(essential)


def fds_to_pairs(fds: Iterable[FD], column_names: Sequence[str]) -> list[tuple[int, int]]:
    """Convert named FDs to ``(lhs_mask, rhs_index)`` pairs."""
    position = {name: i for i, name in enumerate(column_names)}
    return sorted(
        (fd.lhs_mask(column_names), position[fd.rhs]) for fd in fds
    )


def pairs_to_fds(
    pairs: Iterable[tuple[int, int]], column_names: Sequence[str]
) -> list[FD]:
    """Convert ``(lhs_mask, rhs_index)`` pairs to named FDs."""
    return sorted(
        FD(tuple(column_names[i] for i in iter_bits(lhs)), column_names[rhs])
        for lhs, rhs in pairs
    )
