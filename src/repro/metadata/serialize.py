"""JSON (de)serialization of profiling results.

Metanome persists algorithm results so downstream tools can consume them
without re-profiling; this module provides the equivalent for
:class:`~repro.metadata.results.ProfilingResult` — a stable, versioned
JSON document with lossless round-tripping.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any

from .fd import FD
from .ind import IND
from .results import ProfilingResult
from .ucc import UCC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..schema.catalog import SchemaCatalog

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "dumps",
    "loads",
    "canonical_metadata_dumps",
    "result_signature",
    "catalog_to_dict",
    "catalog_from_dict",
    "catalog_dumps",
    "catalog_loads",
    "canonical_catalog_dumps",
    "catalog_signature",
]

FORMAT_VERSION = 1

#: Version of the schema-catalog document, independent of the
#: single-relation :data:`FORMAT_VERSION` it embeds per table.
CATALOG_FORMAT_VERSION = 1


def result_to_dict(result: ProfilingResult) -> dict[str, Any]:
    """Plain-dict form of a result (JSON-ready)."""
    return {
        "format_version": FORMAT_VERSION,
        "relation": result.relation_name,
        "columns": list(result.column_names),
        "inds": [
            {"dependent": ind.dependent, "referenced": ind.referenced}
            for ind in result.inds
        ],
        "uccs": [list(ucc.columns) for ucc in result.uccs],
        "fds": [{"lhs": list(fd.lhs), "rhs": fd.rhs} for fd in result.fds],
        "phase_seconds": dict(result.phase_seconds),
        "counters": dict(result.counters),
    }


def result_from_dict(document: dict[str, Any]) -> ProfilingResult:
    """Rebuild a result from its dict form (validating the schema)."""
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    columns = tuple(document["columns"])
    known = set(columns)
    inds = []
    for entry in document["inds"]:
        if entry["dependent"] not in known or entry["referenced"] not in known:
            raise ValueError(f"IND references unknown column: {entry}")
        inds.append(IND(entry["dependent"], entry["referenced"]))
    uccs = []
    for entry in document["uccs"]:
        if not set(entry) <= known:
            raise ValueError(f"UCC references unknown column: {entry}")
        uccs.append(UCC(tuple(entry)))
    fds = []
    for entry in document["fds"]:
        if not set(entry["lhs"]) <= known or entry["rhs"] not in known:
            raise ValueError(f"FD references unknown column: {entry}")
        fds.append(FD(tuple(entry["lhs"]), entry["rhs"]))
    return ProfilingResult(
        relation_name=document["relation"],
        column_names=columns,
        inds=sorted(inds),
        uccs=sorted(uccs),
        fds=sorted(fds),
        phase_seconds=dict(document.get("phase_seconds", {})),
        counters=dict(document.get("counters", {})),
    )


def dumps(result: ProfilingResult, indent: int | None = 2) -> str:
    """Serialize a result to a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


def loads(text: str) -> ProfilingResult:
    """Parse a result from a JSON string."""
    return result_from_dict(json.loads(text))


def canonical_metadata_dumps(result: ProfilingResult) -> str:
    """Canonical JSON of the *discovered metadata only* (no timings).

    Two results describing the same INDs, UCCs, and FDs over the same
    schema serialize to byte-identical strings regardless of internal
    list ordering, phase timings, or counters — the form the determinism
    checks (parallel sweep vs. serial sweep) and the result cache's
    integrity comparison hash.
    """
    document = {
        "columns": list(result.column_names),
        "inds": sorted(str(ind) for ind in result.inds),
        "uccs": sorted(
            "{" + ",".join(sorted(ucc.columns)) + "}" for ucc in result.uccs
        ),
        "fds": sorted(
            "{" + ",".join(sorted(fd.lhs)) + "}->" + fd.rhs for fd in result.fds
        ),
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def result_signature(result: ProfilingResult) -> str:
    """Hex SHA-256 of :func:`canonical_metadata_dumps` — a compact,
    order-insensitive identity of a result's discovered metadata."""
    return hashlib.sha256(
        canonical_metadata_dumps(result).encode("utf-8")
    ).hexdigest()


# -- schema catalogs ----------------------------------------------------------
#
# The schema classes import this module's building blocks transitively
# through the harness, so they are imported lazily inside the functions
# here (module level would close an import cycle with
# repro.harness.framework).


def catalog_to_dict(catalog: "SchemaCatalog") -> dict[str, Any]:
    """Plain-dict form of a schema catalog (JSON-ready, lossless)."""
    return {
        "catalog_format_version": CATALOG_FORMAT_VERSION,
        "name": catalog.name,
        "status": catalog.status,
        "error": catalog.error,
        "counters": dict(catalog.counters),
        "tables": [
            {
                "name": table.name,
                "path": table.path,
                "fingerprint": table.fingerprint,
                "n_columns": table.n_columns,
                "n_rows": table.n_rows,
                "algorithm": table.algorithm,
                "status": table.status,
                "error": table.error,
                "seconds": table.seconds,
                "cached": table.cached,
                "resumed": table.resumed,
                "duplicate_of": table.duplicate_of,
                "result": (
                    result_to_dict(table.result)
                    if table.result is not None
                    else None
                ),
            }
            for table in catalog.tables
        ],
        "cross_inds": [
            {
                "dependent_table": ind.dependent_table,
                "dependent_column": ind.dependent_column,
                "referenced_table": ind.referenced_table,
                "referenced_column": ind.referenced_column,
            }
            for ind in catalog.cross_inds
        ],
        "fk_candidates": [
            {
                "dependent_table": candidate.ind.dependent_table,
                "dependent_column": candidate.ind.dependent_column,
                "referenced_table": candidate.ind.referenced_table,
                "referenced_column": candidate.ind.referenced_column,
                "coverage": candidate.coverage,
                "cardinality_ratio": candidate.cardinality_ratio,
                "name_similarity": candidate.name_similarity,
                "score": candidate.score,
            }
            for candidate in catalog.fk_candidates
        ],
    }


def catalog_from_dict(document: dict[str, Any]) -> "SchemaCatalog":
    """Rebuild a schema catalog from its dict form (validating version
    and cross-references)."""
    from ..schema.catalog import CrossTableInd, SchemaCatalog, TableProfile
    from ..schema.fk import ForeignKeyCandidate

    version = document.get("catalog_format_version")
    if version != CATALOG_FORMAT_VERSION:
        raise ValueError(
            f"unsupported catalog format version {version!r} "
            f"(expected {CATALOG_FORMAT_VERSION})"
        )
    tables = []
    for entry in document["tables"]:
        tables.append(
            TableProfile(
                name=entry["name"],
                path=entry.get("path"),
                fingerprint=entry.get("fingerprint"),
                n_columns=entry.get("n_columns", 0),
                n_rows=entry.get("n_rows", 0),
                algorithm=entry.get("algorithm"),
                status=entry.get("status", "ok"),
                error=entry.get("error"),
                seconds=entry.get("seconds", 0.0),
                cached=entry.get("cached", False),
                resumed=entry.get("resumed", False),
                duplicate_of=entry.get("duplicate_of"),
                result=(
                    result_from_dict(entry["result"])
                    if entry.get("result") is not None
                    else None
                ),
            )
        )
    names = {table.name for table in tables}
    cross_inds = []
    for entry in document.get("cross_inds", []):
        if (
            entry["dependent_table"] not in names
            or entry["referenced_table"] not in names
        ):
            raise ValueError(f"cross IND references unknown table: {entry}")
        cross_inds.append(
            CrossTableInd(
                dependent_table=entry["dependent_table"],
                dependent_column=entry["dependent_column"],
                referenced_table=entry["referenced_table"],
                referenced_column=entry["referenced_column"],
            )
        )
    fk_candidates = []
    for entry in document.get("fk_candidates", []):
        if (
            entry["dependent_table"] not in names
            or entry["referenced_table"] not in names
        ):
            raise ValueError(f"FK candidate references unknown table: {entry}")
        fk_candidates.append(
            ForeignKeyCandidate(
                ind=CrossTableInd(
                    dependent_table=entry["dependent_table"],
                    dependent_column=entry["dependent_column"],
                    referenced_table=entry["referenced_table"],
                    referenced_column=entry["referenced_column"],
                ),
                coverage=entry["coverage"],
                cardinality_ratio=entry["cardinality_ratio"],
                name_similarity=entry["name_similarity"],
                score=entry["score"],
            )
        )
    return SchemaCatalog(
        name=document["name"],
        tables=tables,
        cross_inds=cross_inds,
        fk_candidates=fk_candidates,
        counters=dict(document.get("counters", {})),
        status=document.get("status", "ok"),
        error=document.get("error"),
    )


def catalog_dumps(catalog: "SchemaCatalog", indent: int | None = 2) -> str:
    """Serialize a schema catalog to a JSON string."""
    return json.dumps(catalog_to_dict(catalog), indent=indent, sort_keys=True)


def catalog_loads(text: str) -> "SchemaCatalog":
    """Parse a schema catalog from a JSON string."""
    return catalog_from_dict(json.loads(text))


def canonical_catalog_dumps(catalog: "SchemaCatalog") -> str:
    """Canonical JSON of a catalog's *discovered content only*.

    Excludes everything a re-run legitimately changes — wall-clock
    ``seconds``, ``cached``/``resumed`` provenance, per-table phase
    timings and work counters, and error prose — and keeps everything
    that must not: table identities and fingerprints, dedup structure,
    statuses, the per-table metadata (via
    :func:`canonical_metadata_dumps`), the cross-table INDs, the FK
    ranking with its exact scores, and the deterministic catalog-level
    counters.  Two schema sweeps of the same directory serialize to
    byte-identical strings regardless of ``jobs``, sampling, storage
    mode, or whether a run resumed from a kill — the form the schema
    differential suite compares.
    """
    document = {
        "name": catalog.name,
        "status": catalog.status,
        "counters": dict(catalog.counters),
        "tables": [
            {
                "name": table.name,
                "path": table.path,
                "fingerprint": table.fingerprint,
                "n_columns": table.n_columns,
                "n_rows": table.n_rows,
                "algorithm": table.algorithm,
                "status": table.status,
                "duplicate_of": table.duplicate_of,
                "metadata": (
                    canonical_metadata_dumps(table.result)
                    if table.result is not None
                    else None
                ),
            }
            for table in catalog.tables
        ],
        "cross_inds": [str(ind) for ind in catalog.cross_inds],
        "fk_candidates": [
            {
                "ind": str(candidate.ind),
                "coverage": candidate.coverage,
                "cardinality_ratio": candidate.cardinality_ratio,
                "name_similarity": candidate.name_similarity,
                "score": candidate.score,
            }
            for candidate in catalog.fk_candidates
        ],
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def catalog_signature(catalog: "SchemaCatalog") -> str:
    """Hex SHA-256 of :func:`canonical_catalog_dumps` — a compact
    identity of a schema sweep's discovered content."""
    return hashlib.sha256(
        canonical_catalog_dumps(catalog).encode("utf-8")
    ).hexdigest()
