"""JSON (de)serialization of profiling results.

Metanome persists algorithm results so downstream tools can consume them
without re-profiling; this module provides the equivalent for
:class:`~repro.metadata.results.ProfilingResult` — a stable, versioned
JSON document with lossless round-tripping.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from .fd import FD
from .ind import IND
from .results import ProfilingResult
from .ucc import UCC

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "dumps",
    "loads",
    "canonical_metadata_dumps",
    "result_signature",
]

FORMAT_VERSION = 1


def result_to_dict(result: ProfilingResult) -> dict[str, Any]:
    """Plain-dict form of a result (JSON-ready)."""
    return {
        "format_version": FORMAT_VERSION,
        "relation": result.relation_name,
        "columns": list(result.column_names),
        "inds": [
            {"dependent": ind.dependent, "referenced": ind.referenced}
            for ind in result.inds
        ],
        "uccs": [list(ucc.columns) for ucc in result.uccs],
        "fds": [{"lhs": list(fd.lhs), "rhs": fd.rhs} for fd in result.fds],
        "phase_seconds": dict(result.phase_seconds),
        "counters": dict(result.counters),
    }


def result_from_dict(document: dict[str, Any]) -> ProfilingResult:
    """Rebuild a result from its dict form (validating the schema)."""
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    columns = tuple(document["columns"])
    known = set(columns)
    inds = []
    for entry in document["inds"]:
        if entry["dependent"] not in known or entry["referenced"] not in known:
            raise ValueError(f"IND references unknown column: {entry}")
        inds.append(IND(entry["dependent"], entry["referenced"]))
    uccs = []
    for entry in document["uccs"]:
        if not set(entry) <= known:
            raise ValueError(f"UCC references unknown column: {entry}")
        uccs.append(UCC(tuple(entry)))
    fds = []
    for entry in document["fds"]:
        if not set(entry["lhs"]) <= known or entry["rhs"] not in known:
            raise ValueError(f"FD references unknown column: {entry}")
        fds.append(FD(tuple(entry["lhs"]), entry["rhs"]))
    return ProfilingResult(
        relation_name=document["relation"],
        column_names=columns,
        inds=sorted(inds),
        uccs=sorted(uccs),
        fds=sorted(fds),
        phase_seconds=dict(document.get("phase_seconds", {})),
        counters=dict(document.get("counters", {})),
    )


def dumps(result: ProfilingResult, indent: int | None = 2) -> str:
    """Serialize a result to a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


def loads(text: str) -> ProfilingResult:
    """Parse a result from a JSON string."""
    return result_from_dict(json.loads(text))


def canonical_metadata_dumps(result: ProfilingResult) -> str:
    """Canonical JSON of the *discovered metadata only* (no timings).

    Two results describing the same INDs, UCCs, and FDs over the same
    schema serialize to byte-identical strings regardless of internal
    list ordering, phase timings, or counters — the form the determinism
    checks (parallel sweep vs. serial sweep) and the result cache's
    integrity comparison hash.
    """
    document = {
        "columns": list(result.column_names),
        "inds": sorted(str(ind) for ind in result.inds),
        "uccs": sorted(
            "{" + ",".join(sorted(ucc.columns)) + "}" for ucc in result.uccs
        ),
        "fds": sorted(
            "{" + ",".join(sorted(fd.lhs)) + "}->" + fd.rhs for fd in result.fds
        ),
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def result_signature(result: ProfilingResult) -> str:
    """Hex SHA-256 of :func:`canonical_metadata_dumps` — a compact,
    order-insensitive identity of a result's discovered metadata."""
    return hashlib.sha256(
        canonical_metadata_dumps(result).encode("utf-8")
    ).hexdigest()
