"""Unique column combinations (§2.2)."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..relation.columnset import mask_of

__all__ = ["UCC"]


@dataclass(frozen=True, slots=True, order=True)
class UCC:
    """A (minimal, when emitted by the discovery algorithms) unique column
    combination: the projection on ``columns`` contains no duplicates.

    ``columns`` is stored in schema order, so equal combinations compare
    equal regardless of construction order.
    """

    columns: tuple[str, ...]

    def __init__(self, columns: Sequence[str]):
        ordered = tuple(columns)
        if not ordered:
            raise ValueError("a UCC needs at least one column")
        if len(set(ordered)) != len(ordered):
            raise ValueError(f"duplicate columns in UCC {ordered!r}")
        object.__setattr__(self, "columns", ordered)

    def sorted_by_schema(self, column_names: Sequence[str]) -> "UCC":
        """Return a copy with columns ordered by schema position."""
        position = {name: i for i, name in enumerate(column_names)}
        return UCC(tuple(sorted(self.columns, key=position.__getitem__)))

    def mask(self, column_names: Sequence[str]) -> int:
        """Bitmask of this combination under the given schema."""
        position = {name: i for i, name in enumerate(column_names)}
        return mask_of(position[c] for c in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __str__(self) -> str:
        return "{" + ", ".join(self.columns) + "}"
