"""Approximation measures for almost-dependencies.

The exact algorithms of the paper decide dependencies binarily, but the
underlying stripped partitions also support the classic *error measures*
from the TANE line of work (and the "soft FD" perspective of CORDS, the
paper's related work):

* ``g3`` for FDs — the minimum fraction of rows to remove so that
  ``X → A`` holds exactly (0.0 = exact FD);
* uniqueness error for UCCs — the fraction of rows to remove so that the
  projection becomes duplicate-free (0.0 = exact UCC);
* containment ratio for unary INDs — the fraction of the dependent
  column's distinct values found in the referenced column (1.0 = exact
  IND).

These let users rank near-misses instead of only seeing the exact sets.
"""

from __future__ import annotations

from ..algorithms.values import canonical_value
from ..pli.index import RelationIndex
from ..relation.relation import Relation

__all__ = ["fd_error", "ucc_error", "ind_containment"]


def fd_error(index: RelationIndex, lhs_mask: int, rhs_index: int) -> float:
    """g3 error of the FD ``lhs → rhs``: 0.0 iff the FD holds exactly.

    For every lhs cluster, all rows except those sharing the cluster's
    most frequent rhs value must be removed; g3 is that total, normalized
    by the row count.
    """
    if index.n_rows == 0:
        return 0.0
    if lhs_mask == 0:
        vector = index.vector(rhs_index)
        counts: dict[int, int] = {}
        for value in vector:
            counts[value] = counts.get(value, 0) + 1
        keep = max(counts.values(), default=0)
        return (index.n_rows - keep) / index.n_rows
    rhs_vector = index.vector(rhs_index)
    removals = 0
    for cluster in index.pli(lhs_mask).clusters:
        counts: dict[int, int] = {}
        for row in cluster:
            value = rhs_vector[row]
            counts[value] = counts.get(value, 0) + 1
        removals += len(cluster) - max(counts.values())
    return removals / index.n_rows


def ucc_error(index: RelationIndex, mask: int) -> float:
    """Uniqueness error: fraction of rows to drop for ``mask`` to be a UCC."""
    if index.n_rows == 0:
        return 0.0
    if mask == 0:
        return (index.n_rows - 1) / index.n_rows if index.n_rows > 1 else 0.0
    return index.pli(mask).error / index.n_rows


def ind_containment(relation: Relation, dependent: int, referenced: int) -> float:
    """Containment ratio of the unary IND candidate ``dependent ⊆ referenced``.

    NULLs are ignored on both sides; an empty (all-NULL) dependent column
    is fully contained by convention (ratio 1.0).
    """
    dep_values = {
        canonical_value(v) for v in relation.column(dependent) if v is not None
    }
    if not dep_values:
        return 1.0
    ref_values = {
        canonical_value(v) for v in relation.column(referenced) if v is not None
    }
    return len(dep_values & ref_values) / len(dep_values)
