"""Result container shared by all profiling algorithms.

A profiling run produces three result sets (INDs, UCCs, FDs) plus the
bookkeeping that the paper's evaluation reports: wall-clock time per phase
and check counters.  Algorithms construct results from bitmask-level
output through :meth:`ProfilingResult.from_masks`, which also canonicalizes
ordering so result sets compare reproducibly.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from ..relation.columnset import bits
from .fd import FD
from .ind import IND
from .ucc import UCC

__all__ = ["ProfilingResult", "fd_signature", "ucc_signature"]


def fd_signature(fds: Iterable[FD]) -> frozenset[tuple[frozenset[str], str]]:
    """Order-insensitive signature of an FD set (for comparisons/tests)."""
    return frozenset((frozenset(fd.lhs), fd.rhs) for fd in fds)


def ucc_signature(uccs: Iterable[UCC]) -> frozenset[frozenset[str]]:
    """Order-insensitive signature of a UCC set."""
    return frozenset(frozenset(u.columns) for u in uccs)


@dataclass(slots=True)
class ProfilingResult:
    """Joint output of one profiling run over one relation."""

    relation_name: str
    column_names: tuple[str, ...]
    inds: list[IND] = field(default_factory=list)
    uccs: list[UCC] = field(default_factory=list)
    fds: list[FD] = field(default_factory=list)
    #: Wall-clock seconds per named phase (e.g. ``"spider"``, ``"ducc"``).
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Algorithm counters (PLI intersections, FD checks, ...).
    counters: dict[str, int] = field(default_factory=dict)

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_masks(
        cls,
        relation_name: str,
        column_names: Sequence[str],
        ind_pairs: Iterable[tuple[int, int]] = (),
        ucc_masks: Iterable[int] = (),
        fd_pairs: Iterable[tuple[int, int]] = (),
        phase_seconds: Mapping[str, float] | None = None,
        counters: Mapping[str, int] | None = None,
    ) -> "ProfilingResult":
        """Build a result from index-level output.

        ``ind_pairs`` are ``(dependent, referenced)`` column indexes,
        ``ucc_masks`` are column bitmasks, and ``fd_pairs`` are
        ``(lhs_mask, rhs_index)`` pairs.
        """
        names = tuple(column_names)
        inds = sorted(
            IND(names[dep], names[ref]) for dep, ref in ind_pairs
        )
        uccs = sorted(
            UCC(tuple(names[i] for i in bits(mask))) for mask in ucc_masks
        )
        fds = sorted(
            FD(tuple(names[i] for i in bits(lhs)), names[rhs])
            for lhs, rhs in fd_pairs
        )
        return cls(
            relation_name=relation_name,
            column_names=names,
            inds=inds,
            uccs=uccs,
            fds=fds,
            phase_seconds=dict(phase_seconds or {}),
            counters=dict(counters or {}),
        )

    # -- views ---------------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        """Sum of all recorded phase durations."""
        return sum(self.phase_seconds.values())

    def fd_map(self) -> dict[frozenset[str], set[str]]:
        """Group FDs by left-hand side: ``{lhs: {rhs, ...}}`` (X → Y form)."""
        grouped: dict[frozenset[str], set[str]] = {}
        for fd in self.fds:
            grouped.setdefault(frozenset(fd.lhs), set()).add(fd.rhs)
        return grouped

    def same_metadata(self, other: "ProfilingResult") -> bool:
        """True iff both results describe identical INDs, UCCs, and FDs."""
        return (
            set(self.inds) == set(other.inds)
            and ucc_signature(self.uccs) == ucc_signature(other.uccs)
            and fd_signature(self.fds) == fd_signature(other.fds)
        )

    def summary(self) -> str:
        """One-line count summary, the shape Fig. 7's secondary axis uses."""
        return (
            f"{self.relation_name}: {len(self.inds)} INDs, "
            f"{len(self.uccs)} UCCs, {len(self.fds)} FDs "
            f"in {self.total_seconds:.3f}s"
        )

    def __repr__(self) -> str:
        return f"ProfilingResult({self.summary()})"
