"""Unary inclusion dependencies (§2.1)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IND"]


@dataclass(frozen=True, slots=True, order=True)
class IND:
    """A unary inclusion dependency ``dependent ⊆ referenced``.

    Every (non-NULL) value of the dependent column also occurs in the
    referenced column.  The paper restricts holistic discovery to unary
    INDs within one relation (§2.1), which is what all algorithms here
    emit.
    """

    dependent: str
    referenced: str

    def __post_init__(self) -> None:
        if self.dependent == self.referenced:
            raise ValueError(f"trivial IND {self.dependent} ⊆ {self.dependent}")

    def __str__(self) -> str:
        return f"{self.dependent} ⊆ {self.referenced}"
