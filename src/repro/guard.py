"""Cooperative execution guards: budgets, deadlines, checkpoints.

FD/UCC discovery has exponential worst cases that are inherent to the
problem, not implementation bugs (Bläsius et al., *The Complexity of
Dependency Detection and Discovery in Relational Databases*); the paper's
evaluation therefore runs every contender under Metanome's time and memory
limits and reports TL/ML cells when a run blows through them.  This module
is that guard layer: a :class:`Budget` bounds one execution by wall-clock
deadline, by PLI-intersection count (the dominant unit of work), and by
estimated cluster memory, and the algorithms *cooperate* by calling
:func:`checkpoint` from their lattice loops.

The enforcement points are the shared substrate hooks: every
:meth:`repro.pli.pli.PLI.intersect` charges the active budget with the
clustered rows it materialized, and :class:`repro.pli.index.RelationIndex`
checkpoints on each PLI/FD/uniqueness request, so even algorithm code that
never imports this module is still interruptible.  Exceeding a budget
raises :class:`BudgetExceeded`; algorithms catch it to attach whatever
they had already discovered (``partial`` / ``partial_result``) and
re-raise, which is how the harness records graceful-degradation cells
instead of losing the run.

Like :mod:`repro.faults` this module is import-order neutral (stdlib
only) so the lowest layers can use it; :mod:`repro.harness.budget`
re-exports the public names for harness users.  The guard is
process-global and single-threaded, matching the kernel's
:data:`~repro.pli.pli.KERNEL_STATS`.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Iterator

from . import liveness as _liveness
from .faults import FAULTS, PROFILER_STEP

__all__ = [
    "Budget",
    "BudgetExceeded",
    "ESTIMATED_BYTES_PER_CLUSTERED_ROW",
    "active_budget",
    "checkpoint",
    "guarded",
]

#: Rough CPython cost of one row id held in a PLI cluster under *object*
#: storage (a boxed int plus its tuple slot).  The memory budget is an
#: *estimate* by design: it bounds the clustered rows materialized by
#: intersections, the only quantity that grows without bound on
#: adversarial inputs.  Under the dictionary-encoded storage modes the
#: per-row figure is rebased to the dense encoded width (8 B) — budgets
#: resolve the active storage mode at :meth:`Budget.start` via
#: :func:`repro.relation.encoded.estimated_bytes_per_clustered_row`.
ESTIMATED_BYTES_PER_CLUSTERED_ROW = 32


class BudgetExceeded(RuntimeError):
    """An execution ran over its :class:`Budget`.

    ``reason`` is ``"timeout"`` (wall-clock deadline or intersection
    budget — both are work limits, Metanome's TL) or ``"memory"``
    (estimated cluster memory, Metanome's ML).  While the exception
    unwinds, algorithms may attach ``partial`` (their own result type with
    everything discovered so far) and profilers ``partial_result`` (a
    :class:`~repro.metadata.results.ProfilingResult`); the harness records
    those as the execution's graceful-degradation output.
    """

    def __init__(self, reason: str, message: str, budget: "Budget | None" = None):
        super().__init__(message)
        self.reason = reason
        self.budget = budget
        self.partial: object | None = None
        self.partial_result: object | None = None

    def __reduce__(self):
        # Default exception pickling replays __init__ with ``args`` alone,
        # which does not match this signature; rebuild explicitly so the
        # exception (with its attached partials) can cross the worker
        # process boundary of a parallel sweep.
        return (
            type(self),
            (self.reason, self.args[0] if self.args else "", self.budget),
            {"partial": self.partial, "partial_result": self.partial_result},
        )


class Budget:
    """Resource bounds for one profiling execution.

    Parameters
    ----------
    deadline_seconds:
        Wall-clock limit, measured from :meth:`start`.
    max_intersections:
        Limit on PLI intersections performed (the unit of lattice work).
    max_cluster_bytes:
        Limit on estimated cluster memory materialized by intersections
        (cumulative clustered rows × :data:`ESTIMATED_BYTES_PER_CLUSTERED_ROW`
        — a proxy for the cache-resident partition footprint).
    checkpoint_stride:
        A cooperative :meth:`checkpoint` reads the clock only every
        ``stride``-th call, keeping the per-iteration cost of guarded
        loops to two integer operations.  Intersections always check.
    bytes_per_clustered_row:
        Estimated memory per clustered row id used by the cluster-memory
        accounting.  ``None`` (the default) resolves from the active
        storage mode at each :meth:`start` — 32 B for boxed object
        columns, 8 B once the substrate runs on dictionary-encoded code
        arrays — so one ``--max-cluster-bytes`` figure means the same
        physical bound whichever storage mode a run selects.

    A budget is re-armed by :meth:`start` (which :func:`guarded` calls),
    so one instance can be reused across executions; ``intersections``,
    ``cluster_bytes``, and ``elapsed_seconds`` then describe the most
    recent run.
    """

    __slots__ = (
        "deadline_seconds",
        "max_intersections",
        "max_cluster_bytes",
        "checkpoint_stride",
        "intersections",
        "cluster_bytes",
        "bytes_per_clustered_row",
        "_configured_bytes_per_row",
        "_started_at",
        "_deadline_at",
        "_ticks",
    )

    def __init__(
        self,
        deadline_seconds: float | None = None,
        max_intersections: int | None = None,
        max_cluster_bytes: int | None = None,
        checkpoint_stride: int = 64,
        bytes_per_clustered_row: int | None = None,
    ):
        for name, value in (
            ("deadline_seconds", deadline_seconds),
            ("max_intersections", max_intersections),
            ("max_cluster_bytes", max_cluster_bytes),
        ):
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if checkpoint_stride < 1:
            raise ValueError(f"checkpoint_stride must be >= 1, got {checkpoint_stride}")
        if bytes_per_clustered_row is not None and bytes_per_clustered_row < 1:
            raise ValueError(
                f"bytes_per_clustered_row must be positive, got "
                f"{bytes_per_clustered_row}"
            )
        self._configured_bytes_per_row = bytes_per_clustered_row
        self.deadline_seconds = deadline_seconds
        self.max_intersections = max_intersections
        self.max_cluster_bytes = max_cluster_bytes
        self.checkpoint_stride = checkpoint_stride
        self.start()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """(Re-)arm the budget: zero the counters, anchor the deadline."""
        self.intersections = 0
        self.cluster_bytes = 0
        if self._configured_bytes_per_row is not None:
            self.bytes_per_clustered_row = self._configured_bytes_per_row
        else:
            # Deferred import: this module stays import-order neutral for
            # the substrate layers that import it at load time.
            from .relation.encoded import estimated_bytes_per_clustered_row

            self.bytes_per_clustered_row = estimated_bytes_per_clustered_row()
        self._ticks = 0
        self._started_at = time.perf_counter()
        self._deadline_at = (
            self._started_at + self.deadline_seconds
            if self.deadline_seconds is not None
            else math.inf
        )

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds since the last :meth:`start`."""
        return time.perf_counter() - self._started_at

    @property
    def remaining_seconds(self) -> float | None:
        """Seconds left before the deadline (``None`` without one).

        May be negative once the deadline has passed but no checkpoint
        has fired yet.  Optional work — e.g. the sampling engine's
        violation harvest — consults this to skip itself when the budget
        is nearly exhausted, so an optimization never converts an ``ok``
        run into a ``timeout``.
        """
        if self.deadline_seconds is None:
            return None
        return self._deadline_at - time.perf_counter()

    # -- enforcement -------------------------------------------------------

    def checkpoint(self) -> None:
        """Cooperative deadline check; cheap enough for inner loops."""
        self._ticks += 1
        if self._ticks >= self.checkpoint_stride:
            self._ticks = 0
            self._check_deadline()

    def charge_intersection(self, clustered_rows: int) -> None:
        """Account one PLI intersection that materialized
        ``clustered_rows`` cluster entries; called by the kernel."""
        self.intersections += 1
        if (
            self.max_intersections is not None
            and self.intersections > self.max_intersections
        ):
            raise BudgetExceeded(
                "timeout",
                f"PLI intersection budget of {self.max_intersections} "
                f"exhausted after {self.elapsed_seconds:.3f}s",
                self,
            )
        self.cluster_bytes += clustered_rows * self.bytes_per_clustered_row
        if (
            self.max_cluster_bytes is not None
            and self.cluster_bytes > self.max_cluster_bytes
        ):
            raise BudgetExceeded(
                "memory",
                f"estimated cluster memory {self.cluster_bytes} B exceeds "
                f"budget of {self.max_cluster_bytes} B",
                self,
            )
        self._check_deadline()

    def _check_deadline(self) -> None:
        if time.perf_counter() >= self._deadline_at:
            raise BudgetExceeded(
                "timeout",
                f"wall-clock deadline of {self.deadline_seconds}s exceeded "
                f"after {self.elapsed_seconds:.3f}s",
                self,
            )

    def __repr__(self) -> str:
        limits = []
        if self.deadline_seconds is not None:
            limits.append(f"deadline={self.deadline_seconds}s")
        if self.max_intersections is not None:
            limits.append(f"max_intersections={self.max_intersections}")
        if self.max_cluster_bytes is not None:
            limits.append(f"max_cluster_bytes={self.max_cluster_bytes}")
        return f"Budget({', '.join(limits) or 'unbounded'})"


#: The currently guarded execution's budget (``None`` outside
#: :func:`guarded`).  Read directly by the kernel hot path.
ACTIVE: Budget | None = None


def active_budget() -> Budget | None:
    """The budget guarding the current execution, if any."""
    return ACTIVE


def checkpoint() -> None:
    """Cooperative guard point for algorithm loops.

    No-op (three global reads) when no budget is active, no fault is
    armed, and no heartbeat is armed; otherwise enforces the active
    budget's deadline, trips the :data:`~repro.faults.PROFILER_STEP`
    fault point, and refreshes the worker liveness heartbeat.
    """
    budget = ACTIVE
    if budget is not None:
        budget.checkpoint()
    if FAULTS.armed:
        FAULTS.trip(PROFILER_STEP)
    heartbeat = _liveness.ACTIVE
    if heartbeat is not None:
        heartbeat.beat()


@contextmanager
def guarded(budget: Budget | None) -> Iterator[Budget | None]:
    """Install ``budget`` as the active guard for the enclosed execution.

    Re-arms the budget on entry and restores the previously active guard
    on exit (guards nest; the innermost wins, matching scoped
    :class:`~repro.pli.store.PliStore` usage).  ``None`` is a no-op so
    callers need not special-case unbudgeted runs.
    """
    global ACTIVE
    if budget is None:
        yield None
        return
    previous = ACTIVE
    budget.start()
    ACTIVE = budget
    try:
        yield budget
    finally:
        ACTIVE = previous
